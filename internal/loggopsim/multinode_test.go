package loggopsim

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/noise"
	"repro/internal/trace"
)

// fastLocal returns a shared-memory-like parameter set: 10x lower
// latency and overheads than the inter-node network.
func fastLocal() *netmodel.Params {
	p := netmodel.CrayXC40()
	p.L /= 10
	p.O /= 10
	p.Gap /= 10
	p.GPerByte /= 10
	p.OPerByte /= 10
	return &p
}

func TestRanksPerNodeDefaultsToOne(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, 64, 0)},
		{trace.Recv(0, 64, 0)},
	}}
	a := mustSim(t, tr, Config{Net: netmodel.CrayXC40()})
	b := mustSim(t, tr, Config{Net: netmodel.CrayXC40(), RanksPerNode: 1})
	if a.Makespan != b.Makespan {
		t.Fatalf("explicit rpn=1 changed result: %d vs %d", a.Makespan, b.Makespan)
	}
}

func TestLocalNetSpeedsUpIntraNodeMessages(t *testing.T) {
	// Ranks 0,1 share a node (rpn=2): their exchange should be ~10x
	// faster with LocalNet than without.
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, 1024, 0)},
		{trace.Recv(0, 1024, 0)},
	}}
	remote := mustSim(t, tr, Config{Net: netmodel.CrayXC40(), RanksPerNode: 2})
	local := mustSim(t, tr, Config{Net: netmodel.CrayXC40(), RanksPerNode: 2, LocalNet: fastLocal()})
	if local.Makespan >= remote.Makespan {
		t.Fatalf("local transport not faster: %d vs %d", local.Makespan, remote.Makespan)
	}
	want := fastLocal().EagerLatency(1024)
	if local.FinishTimes[1] != want {
		t.Fatalf("local latency %d, want closed-form %d", local.FinishTimes[1], want)
	}
}

func TestLocalNetOnlyAppliesWithinNode(t *testing.T) {
	// Ranks 0,1 on node 0; ranks 2,3 on node 1. The 0->2 message must
	// use the remote parameters even with LocalNet configured.
	net := netmodel.CrayXC40()
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(2, 512, 0)},
		{},
		{trace.Recv(0, 512, 0)},
		{},
	}}
	res := mustSim(t, tr, Config{Net: net, RanksPerNode: 2, LocalNet: fastLocal()})
	if res.FinishTimes[2] != net.EagerLatency(512) {
		t.Fatalf("inter-node latency %d, want %d", res.FinishTimes[2], net.EagerLatency(512))
	}
}

func TestSharedNICSerializesCoLocatedSenders(t *testing.T) {
	// Two ranks on one node send simultaneously to distinct remote
	// ranks: the shared NIC forces the second injection to wait a gap.
	net := netmodel.CrayXC40()
	size := int64(4096)
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(2, size, 0)},
		{trace.Send(3, size, 0)},
		{trace.Recv(0, size, 0)},
		{trace.Recv(1, size, 0)},
	}}
	shared := mustSim(t, tr, Config{Net: net, RanksPerNode: 2})
	separate := mustSim(t, tr, Config{Net: net, RanksPerNode: 1})
	// With separate NICs both receivers finish at the same one-way
	// latency; with a shared NIC one of them is delayed by the gap.
	if separate.FinishTimes[2] != separate.FinishTimes[3] {
		t.Fatalf("separate NICs skewed receivers: %v", separate.FinishTimes)
	}
	slower := max64(shared.FinishTimes[2], shared.FinishTimes[3])
	faster := min64(shared.FinishTimes[2], shared.FinishTimes[3])
	if slower-faster != net.NICGap(size) {
		t.Fatalf("shared NIC skew = %d, want one gap %d", slower-faster, net.NICGap(size))
	}
}

func TestRendezvousUsesSharedNIC(t *testing.T) {
	// Large payloads through the shared NIC must also serialize.
	net := netmodel.CrayXC40()
	size := net.S * 4
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(2, size, 0)},
		{trace.Send(3, size, 0)},
		{trace.Recv(0, size, 0)},
		{trace.Recv(1, size, 0)},
	}}
	shared := mustSim(t, tr, Config{Net: net, RanksPerNode: 2})
	if shared.FinishTimes[2] == shared.FinishTimes[3] {
		t.Fatal("rendezvous payloads did not serialize through the shared NIC")
	}
}

func TestSMMDetourHaltsWholeNode(t *testing.T) {
	// Two independent rank pairs; ranks 0,1 share node 0. CE noise
	// targeted at node 0 with a SharedCE model must delay rank 1's work
	// even though only "rank 0's" errors occur — SMM halts the node.
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Calc(100 * ms)},
		{trace.Calc(100 * ms)},
		{trace.Calc(100 * ms)},
		{trace.Calc(100 * ms)},
	}}
	nm, err := noise.NewSharedCE(2, 2, noise.Config{
		Seed: 3, MTBCE: 10 * ms, Duration: noise.Fixed(7 * ms), Target: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := mustSim(t, tr, Config{Net: netmodel.CrayXC40(), RanksPerNode: 2, Noise: nm})
	if res.FinishTimes[0] != res.FinishTimes[1] {
		t.Fatalf("co-located ranks saw different detours: %v", res.FinishTimes[:2])
	}
	if res.FinishTimes[0] == 100*ms {
		t.Fatal("targeted node saw no detours")
	}
	if res.FinishTimes[2] != 100*ms || res.FinishTimes[3] != 100*ms {
		t.Fatalf("untargeted node delayed: %v", res.FinishTimes[2:])
	}
}

func TestMultiRankCollectiveRuns(t *testing.T) {
	// A barrier across 4 nodes x 4 ranks with local transport: checks
	// the full pipeline at rpn > 1.
	res := simCollective(t, 16, trace.Barrier(), Config{
		Net: netmodel.CrayXC40(), RanksPerNode: 4, LocalNet: fastLocal(),
	})
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// The same barrier with all-remote parameters must be slower or
	// equal (local links can only help).
	remote := simCollective(t, 16, trace.Barrier(), Config{Net: netmodel.CrayXC40(), RanksPerNode: 4})
	if res.Makespan > remote.Makespan {
		t.Fatalf("local transport slowed the barrier: %d vs %d", res.Makespan, remote.Makespan)
	}
}

func TestNegativeRanksPerNodeRejected(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{{trace.Calc(1)}}}
	if _, err := Simulate(tr, Config{Net: netmodel.CrayXC40(), RanksPerNode: -2}); err == nil {
		t.Fatal("negative ranks per node accepted")
	}
}

func TestBadLocalNetRejected(t *testing.T) {
	tr := &trace.Trace{Ops: [][]trace.Op{{trace.Calc(1)}}}
	bad := netmodel.Params{L: -5}
	if _, err := Simulate(tr, Config{Net: netmodel.CrayXC40(), LocalNet: &bad}); err == nil {
		t.Fatal("invalid LocalNet accepted")
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestExtraLatencyAppliesAcrossGroups(t *testing.T) {
	net := netmodel.CrayXC40()
	extra := netmodel.DragonflyExtra(2, 5*ms)
	// Rank 0 -> 1 (same group): base latency. Rank 0 -> 2 (cross
	// group): +5 ms.
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, 64, 0), trace.Send(2, 64, 1)},
		{trace.Recv(0, 64, 0)},
		{trace.Recv(0, 64, 1)},
	}}
	res := mustSim(t, tr, Config{Net: net, ExtraLatency: extra})
	if res.FinishTimes[1] != net.EagerLatency(64) {
		t.Fatalf("in-group latency %d, want %d", res.FinishTimes[1], net.EagerLatency(64))
	}
	// Second send: CPU 2x SendCPU, NIC gap may dominate; lower bound:
	// arrival includes the extra hop.
	if res.FinishTimes[2] < net.EagerLatency(64)+5*ms {
		t.Fatalf("cross-group latency %d missing extra hop", res.FinishTimes[2])
	}
}

func TestExtraLatencyAppliesToRendezvous(t *testing.T) {
	net := netmodel.CrayXC40()
	big := net.S * 2
	extra := netmodel.DragonflyExtra(1, 2*ms) // every pair crosses groups
	tr := &trace.Trace{Ops: [][]trace.Op{
		{trace.Send(1, big, 0)},
		{trace.Recv(0, big, 0)},
	}}
	plain := mustSim(t, tr, Config{Net: net})
	slow := mustSim(t, tr, Config{Net: net, ExtraLatency: extra})
	// RTS + CTS + payload each pay the hop: at least 6 ms slower.
	if slow.Makespan < plain.Makespan+6*ms {
		t.Fatalf("rendezvous handshake skipped extra hops: %d vs %d", slow.Makespan, plain.Makespan)
	}
}
