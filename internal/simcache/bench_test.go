package simcache

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/noise"
)

// luleshBaseline is the mid-size serving hot spot: a 64-node LULESH
// point, the shape a Fig. 4/5 sweep asks for repeatedly. The hit/miss
// pair below bounds what the daemon saves per request when the
// baseline is resident; track both in BENCH_*.json alongside the
// figure benchmarks.
func luleshBaseline() core.ExperimentConfig {
	return core.ExperimentConfig{Workload: "lulesh", Nodes: 64, Iterations: 8, TraceSeed: 1}
}

// BenchmarkCacheHit measures the resident-baseline lookup path: hash,
// LRU touch, return. This is the per-request cache overhead when the
// daemon serves a hot (workload, nodes, iters) point.
func BenchmarkCacheHit(b *testing.B) {
	c := New(0)
	cfg := luleshBaseline()
	if _, _, err := c.GetOrBuild(context.Background(), cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, err := c.GetOrBuild(context.Background(), cfg); err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
}

// BenchmarkCacheMiss measures the full build path the cache avoids:
// trace generation, collective expansion and the baseline simulation.
// Each iteration uses a fresh seed so nothing is resident.
func BenchmarkCacheMiss(b *testing.B) {
	c := New(0)
	for i := 0; i < b.N; i++ {
		cfg := luleshBaseline()
		cfg.TraceSeed = uint64(i + 1)
		if _, hit, err := c.GetOrBuild(context.Background(), cfg); err != nil || hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
}

// BenchmarkServeScenario measures one cached end-to-end request: a
// cache hit followed by a three-rep CE scenario, the daemon's steady
// state for a hot point.
func BenchmarkServeScenario(b *testing.B) {
	c := New(0)
	cfg := luleshBaseline()
	if _, _, err := c.GetOrBuild(context.Background(), cfg); err != nil {
		b.Fatal(err)
	}
	sc := core.Scenario{
		MTBCE:    5544 * 1000 * 1000 * 1000 / 64, // exascale-cielo-x10, scale-compensated
		PerEvent: noise.Fixed(775 * 1000),        // software-cmci
		Target:   noise.AllNodes,
		Seed:     2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp, _, err := c.GetOrBuild(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exp.RunRepeatedParallel(sc, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}
