package simcache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netmodel"
)

func tinyCfg(seed uint64) core.ExperimentConfig {
	return core.ExperimentConfig{Workload: "minife", Nodes: 16, Iterations: 2, TraceSeed: seed}
}

func TestKeyCanonicalization(t *testing.T) {
	zero := tinyCfg(1)
	explicit := zero
	explicit.Net = netmodel.CrayXC40()
	if Key(zero) != Key(explicit) {
		t.Fatal("zero-Net and explicit-Cray configs hash differently")
	}
	other := tinyCfg(2)
	if Key(zero) == Key(other) {
		t.Fatal("distinct seeds collide")
	}
	otherNet := zero
	otherNet.Net = netmodel.Params{L: 1, O: 1, Gap: 1, GPerByte: 0.5, OPerByte: 0.5, S: 64}
	if Key(zero) == Key(otherNet) {
		t.Fatal("distinct network models collide")
	}
}

func TestGetOrBuildHitMiss(t *testing.T) {
	c := New(0)
	var builds atomic.Int64
	c.SetBuilder(func(cfg core.ExperimentConfig) (*core.Experiment, error) {
		builds.Add(1)
		return core.NewExperiment(cfg)
	})
	ctx := context.Background()

	e1, hit, err := c.GetOrBuild(ctx, tinyCfg(1))
	if err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v", hit, err)
	}
	e2, hit, err := c.GetOrBuild(ctx, tinyCfg(1))
	if err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v", hit, err)
	}
	if e1 != e2 {
		t.Fatal("hit returned a different experiment")
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times, want 1", n)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.HitRatio != 0.5 {
		t.Fatalf("stats %+v", s)
	}
	if s.SizeBytes <= 0 || s.SizeBytes > s.CapBytes {
		t.Fatalf("implausible size accounting: %+v", s)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := New(0)
	var builds atomic.Int64
	release := make(chan struct{})
	c.SetBuilder(func(cfg core.ExperimentConfig) (*core.Experiment, error) {
		builds.Add(1)
		<-release
		return core.NewExperiment(cfg)
	})

	const waiters = 4
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, hits[i], errs[i] = c.GetOrBuild(context.Background(), tinyCfg(1))
		}(i)
	}
	// Wait until one goroutine owns the build and the rest are parked
	// on its flight, then let the build finish.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := c.Stats()
		if s.Misses == 1 && s.Coalesced == waiters-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coalescing never settled: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times, want 1", n)
	}
	var hitCount int
	for _, h := range hits {
		if h {
			hitCount++
		}
	}
	if hitCount != waiters-1 {
		t.Fatalf("%d waiters reported hits, want %d", hitCount, waiters-1)
	}
}

func TestEvictionRespectsBound(t *testing.T) {
	first, err := core.NewExperiment(tinyCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	// Bound the cache to just over one entry so the second insert
	// evicts the first.
	c := New(Cost(first.Prepared()) + entryOverheadBytes/2)
	ctx := context.Background()
	if _, _, err := c.GetOrBuild(ctx, tinyCfg(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetOrBuild(ctx, tinyCfg(2)); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Entries != 1 || s.Evictions != 1 {
		t.Fatalf("stats after eviction: %+v", s)
	}
	if _, ok := c.Get(tinyCfg(1)); ok {
		t.Fatal("evicted entry still resident")
	}
	if _, ok := c.Get(tinyCfg(2)); !ok {
		t.Fatal("most recent entry evicted")
	}
}

func TestLRUOrderSurvivesTouches(t *testing.T) {
	exp, err := core.NewExperiment(tinyCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	// Room for two entries; touching the older one should make the
	// middle one the eviction victim.
	c := New(2*Cost(exp.Prepared()) + entryOverheadBytes)
	ctx := context.Background()
	for _, seed := range []uint64{1, 2} {
		if _, _, err := c.GetOrBuild(ctx, tinyCfg(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get(tinyCfg(1)); !ok { // touch 1: order is now [1, 2]
		t.Fatal("entry 1 missing before touch test")
	}
	if _, _, err := c.GetOrBuild(ctx, tinyCfg(3)); err != nil { // evicts 2
		t.Fatal(err)
	}
	if _, ok := c.Get(tinyCfg(2)); ok {
		t.Fatal("least recently used entry survived")
	}
	if _, ok := c.Get(tinyCfg(1)); !ok {
		t.Fatal("recently touched entry evicted")
	}
}

func TestBuilderErrorNotCached(t *testing.T) {
	c := New(0)
	fail := true
	c.SetBuilder(func(cfg core.ExperimentConfig) (*core.Experiment, error) {
		if fail {
			return nil, errors.New("transient")
		}
		return core.NewExperiment(cfg)
	})
	ctx := context.Background()
	if _, _, err := c.GetOrBuild(ctx, tinyCfg(1)); err == nil {
		t.Fatal("builder error swallowed")
	}
	fail = false
	if _, hit, err := c.GetOrBuild(ctx, tinyCfg(1)); err != nil || hit {
		t.Fatalf("retry after error: hit=%v err=%v", hit, err)
	}
	if s := c.Stats(); s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestConcurrentMixedLookups(t *testing.T) {
	c := New(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := tinyCfg(uint64(i%2 + 1))
			if _, _, err := c.GetOrBuild(context.Background(), cfg); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries != 2 {
		t.Fatalf("entries %d, want 2", s.Entries)
	}
	if s.Hits+s.Coalesced+s.Misses != 8 {
		t.Fatalf("lookup accounting off: %+v", s)
	}
}

func TestCachedExperimentAnswersScenarios(t *testing.T) {
	c := New(0)
	exp, _, err := c.GetOrBuild(context.Background(), tinyCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.NewExperiment(tinyCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Baseline().Makespan != direct.Baseline().Makespan {
		t.Fatalf("cached baseline makespan %d != direct %d",
			exp.Baseline().Makespan, direct.Baseline().Makespan)
	}
}

func TestKeyIsStableHex(t *testing.T) {
	k := Key(tinyCfg(1))
	if len(k) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", k)
	}
	if k != Key(tinyCfg(1)) {
		t.Fatal("key not deterministic")
	}
}
