package simcache

// The on-disk result store extends the package's content-addressed
// keying (Key's sha256 canonicalization) from resident baselines to
// durable job results: the server stores each completed job's result
// bytes under the sha256 of its canonical request, so a restarted
// daemon answers replayed or repeated requests from disk instead of
// recomputing — and a corrupted entry degrades to a recompute, never to
// a wrong answer or a crash (docs/DURABILITY.md).
//
// Entry format (one file per key, sharded by the key's first byte):
//
//	"CESR1\n"                     magic + format version
//	[2 bytes LE tenant length][tenant]
//	[4 bytes LE IEEE CRC32 of payload]
//	[payload]
//
// Writes are atomic: the entry is assembled in a temp file in the same
// directory and renamed into place, so readers never observe a partial
// entry and a crash mid-write leaves only a stray temp file (removed by
// the startup scan). Reads verify the CRC; a short or corrupt entry is
// quarantined (renamed *.corrupt) and reported as a miss. The tenant
// recorded in the header feeds per-tenant disk accounting, rebuilt by
// Scan on startup.

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faultinject"
)

// ResultKey extends Key's sha256 content addressing from experiment
// configurations to whole job results: the key is the hash of the job
// kind plus the canonical request payload, so two submissions that ask
// for the same computation share one stored answer (the pipeline's
// determinism contract makes the answer a pure function of the
// request).
func ResultKey(kind string, payload []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "kind=%s|", kind)
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}

// storeMagic frames every entry; bump the digit on format changes.
var storeMagic = []byte("CESR1\n")

// maxTenantLen bounds the tenant name recorded in an entry header.
const maxTenantLen = 256

// StoreStats is the store's /metrics section.
type StoreStats struct {
	// Entries and SizeBytes gauge the live store (maintained
	// incrementally after the startup scan).
	Entries   int   `json:"entries"`
	SizeBytes int64 `json:"size_bytes"`
	// Puts, Hits and Misses count operations since open.
	Puts   uint64 `json:"puts"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// WriteErrors counts failed Puts (disk errors or injected faults);
	// each one degraded durability, not correctness.
	WriteErrors uint64 `json:"write_errors"`
	// Quarantined counts corrupt entries renamed *.corrupt — by the
	// startup scan or by a read that failed verification.
	Quarantined uint64 `json:"quarantined"`
	// DirSyncs counts shard-directory fsyncs issued after renames
	// (publishes and quarantines), making those renames durable.
	DirSyncs uint64 `json:"dir_syncs"`
	// Tenants is the per-tenant resident footprint, sorted by name.
	Tenants []TenantUsage `json:"tenants,omitempty"`
}

// TenantUsage is one tenant's resident store footprint.
type TenantUsage struct {
	Tenant    string `json:"tenant"`
	Entries   int    `json:"entries"`
	SizeBytes int64  `json:"size_bytes"`
}

// Store is a content-addressed on-disk result store. Construct with
// OpenStore; all methods are safe for concurrent use.
type Store struct {
	dir string

	mu      sync.Mutex
	entries int
	size    int64
	tenants map[string]*TenantUsage

	puts        uint64
	hits        uint64
	misses      uint64
	writeErrors uint64
	quarantined uint64
	dirSyncs    uint64
}

// syncDir fsyncs a directory so a preceding rename of one of its
// entries survives a crash: the file's own fsync persists the bytes,
// but only a directory fsync persists the name now pointing at them.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// OpenStore creates dir if needed and runs the startup integrity scan:
// every entry is CRC-verified, corrupt or truncated entries are
// quarantined (never fatal), stray temp files from interrupted writes
// are removed, and per-tenant usage is rebuilt from the surviving
// headers.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simcache: open store %s: %w", dir, err)
	}
	s := &Store{dir: dir, tenants: map[string]*TenantUsage{}}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// scan walks the store once at open, verifying and accounting every
// entry. Damage is quarantined and counted; only an unreadable
// directory is an error.
func (s *Store) scan() error {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("simcache: scan store: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		shardDir := filepath.Join(s.dir, shard.Name())
		entries, err := os.ReadDir(shardDir)
		if err != nil {
			return fmt.Errorf("simcache: scan store: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			path := filepath.Join(shardDir, name)
			switch {
			case strings.HasPrefix(name, tmpPrefix):
				// Leftover from a write interrupted before rename.
				_ = os.Remove(path)
				continue
			case strings.HasSuffix(name, ".corrupt"):
				continue
			}
			tenant, payload, err := readEntry(path)
			if err != nil {
				s.quarantined++
				_ = os.Rename(path, path+".corrupt")
				// Best effort, like the rename: when it lands, a crash
				// cannot resurrect the corrupt name for the next scan.
				if syncDir(shardDir) == nil {
					s.dirSyncs++
				}
				continue
			}
			s.account(tenant, int64(len(payload)), 1)
		}
	}
	return nil
}

// account adjusts the global and per-tenant gauges. s.mu must be held
// (or the store not yet published).
func (s *Store) account(tenant string, deltaBytes int64, deltaEntries int) {
	s.entries += deltaEntries
	s.size += deltaBytes
	u, ok := s.tenants[tenant]
	if !ok {
		u = &TenantUsage{Tenant: tenant}
		s.tenants[tenant] = u
	}
	u.Entries += deltaEntries
	u.SizeBytes += deltaBytes
}

// tmpPrefix marks in-progress writes; the startup scan removes strays.
const tmpPrefix = ".tmp-"

// validKey accepts lowercase-hex content hashes (the shape Key and
// ResultKey produce) so a hostile key cannot escape the store root.
func validKey(key string) error {
	if len(key) < 8 || len(key) > 128 {
		return fmt.Errorf("simcache: store key %q: length outside [8, 128]", key)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("simcache: store key %q: not lowercase hex", key)
		}
	}
	return nil
}

// path shards entries by the key's leading byte pair.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// Put atomically persists payload under key for tenant: temp file in
// the entry's shard directory, fsync, rename. A failed Put is counted
// and returned but must be treated as a durability downgrade by
// callers, never a request failure. ctx feeds the store.write fault
// site.
func (s *Store) Put(ctx context.Context, tenant, key string, payload []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	if len(tenant) > maxTenantLen {
		return fmt.Errorf("simcache: tenant name exceeds %d bytes", maxTenantLen)
	}
	err := s.put(ctx, tenant, key, payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.writeErrors++
		return err
	}
	s.puts++
	return nil
}

func (s *Store) put(ctx context.Context, tenant, key string, payload []byte) error {
	if err := faultinject.Fire(ctx, faultinject.SiteStoreWrite); err != nil {
		return fmt.Errorf("simcache: store write: %w", err)
	}
	final := s.path(key)
	shardDir := filepath.Dir(final)
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		return fmt.Errorf("simcache: store write: %w", err)
	}
	tmp, err := os.CreateTemp(shardDir, tmpPrefix+key+"-*")
	if err != nil {
		return fmt.Errorf("simcache: store write: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	// One buffer, one Write: a crash between separate header and
	// payload writes could leave a frame whose header describes bytes
	// that never arrived, and the write syscall is the only boundary
	// the kernel promises not to tear on the way to the page cache.
	buf := make([]byte, 0, len(storeMagic)+2+len(tenant)+4+len(payload))
	buf = append(buf, storeMagic...)
	var tl [2]byte
	binary.LittleEndian.PutUint16(tl[:], uint16(len(tenant)))
	buf = append(buf, tl[:]...)
	buf = append(buf, tenant...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	buf = append(buf, crc[:]...)
	buf = append(buf, payload...)
	if _, err := tmp.Write(buf); err != nil {
		return fmt.Errorf("simcache: store write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("simcache: store write: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		_ = os.Remove(name)
		return fmt.Errorf("simcache: store write: %w", err)
	}
	tmp = nil
	// Existence check and rename happen under one critical section (as
	// Get's quarantine path already does) so two concurrent Puts of the
	// same key cannot both observe "new" and double-count the entry; the
	// filesystem is the source of truth for what already existed.
	s.mu.Lock()
	_, statErr := os.Stat(final)
	existed := statErr == nil
	if err := os.Rename(name, final); err != nil {
		s.mu.Unlock()
		_ = os.Remove(name)
		return fmt.Errorf("simcache: store write: %w", err)
	}
	if !existed {
		s.account(tenant, int64(len(payload)), 1)
	}
	// Crash ordering: entry bytes → file fsync → rename → shard-dir
	// fsync. Without the last step the rename lives only in the page
	// cache and a crash can silently un-publish an acknowledged Put.
	// Issued inside the critical section so the dirSyncs gauge moves
	// with the rename it covers.
	if err := syncDir(shardDir); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("simcache: store write: %w", err)
	}
	s.dirSyncs++
	s.mu.Unlock()
	return nil
}

// Get returns the stored payload for key. A missing entry is a plain
// miss; a short or corrupt entry is quarantined, counted, and reported
// as a miss — the caller recomputes, which is bit-identical by the
// pipeline's determinism contract.
func (s *Store) Get(key string) ([]byte, bool) {
	if validKey(key) != nil {
		return nil, false
	}
	path := s.path(key)
	tenant, payload, err := readEntry(path)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.misses++
		if !os.IsNotExist(err) {
			// Present but damaged: quarantine it and drop its footprint
			// from the gauges (best effort — if the header itself is
			// gone the tenant attribution is lost, not the safety).
			s.quarantined++
			if info, statErr := os.Stat(path); statErr == nil && tenant != "" {
				payloadLen := info.Size() - int64(len(storeMagic)+2+len(tenant)+4)
				if payloadLen < 0 {
					payloadLen = 0
				}
				s.account(tenant, -payloadLen, -1)
			}
			_ = os.Rename(path, path+".corrupt")
			// Best effort: a read-only filesystem still misses safely,
			// but when the fsync lands the quarantine survives a crash.
			if syncDir(filepath.Dir(path)) == nil {
				s.dirSyncs++
			}
		}
		return nil, false
	}
	s.hits++
	return payload, true
}

// readEntry reads and verifies one entry file. The tenant is returned
// even on some damage paths (best effort) so accounting can adjust.
func readEntry(path string) (tenant string, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if len(data) < len(storeMagic)+2 {
		return "", nil, fmt.Errorf("simcache: entry %s: short header", path)
	}
	if string(data[:len(storeMagic)]) != string(storeMagic) {
		return "", nil, fmt.Errorf("simcache: entry %s: bad magic", path)
	}
	rest := data[len(storeMagic):]
	tl := int(binary.LittleEndian.Uint16(rest[:2]))
	rest = rest[2:]
	if tl > maxTenantLen || len(rest) < tl+4 {
		return "", nil, fmt.Errorf("simcache: entry %s: truncated", path)
	}
	tenant = string(rest[:tl])
	rest = rest[tl:]
	want := binary.LittleEndian.Uint32(rest[:4])
	payload = rest[4:]
	if crc32.ChecksumIEEE(payload) != want {
		return tenant, nil, fmt.Errorf("simcache: entry %s: crc mismatch", path)
	}
	return tenant, payload, nil
}

// TenantBytes returns tenant's resident footprint, for disk quotas.
func (s *Store) TenantBytes(tenant string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if u, ok := s.tenants[tenant]; ok {
		return u.SizeBytes
	}
	return 0
}

// Stats snapshots the store's gauges and counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Entries: s.entries, SizeBytes: s.size,
		Puts: s.puts, Hits: s.hits, Misses: s.misses,
		WriteErrors: s.writeErrors, Quarantined: s.quarantined,
		DirSyncs: s.dirSyncs,
	}
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st.Tenants = append(st.Tenants, *s.tenants[name])
	}
	return st
}
