package simcache

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// TestBuilderPanicDoesNotWedgeWaiters is the "wedged cache fill" case:
// the builder panics while concurrent waiters are coalesced on its
// flight. Every waiter must get a typed error promptly instead of
// blocking forever, and a later lookup with a healthy builder must
// succeed (errors are not cached).
func TestBuilderPanicDoesNotWedgeWaiters(t *testing.T) {
	c := New(0)
	entered := make(chan struct{})
	release := make(chan struct{})
	c.SetBuilder(func(cfg core.ExperimentConfig) (*core.Experiment, error) {
		close(entered)
		<-release
		panic("builder exploded")
	})

	errs := make(chan error, 2)
	go func() {
		_, _, err := c.GetOrBuild(context.Background(), tinyCfg(1))
		errs <- err
	}()
	<-entered
	// Second goroutine coalesces onto the doomed flight.
	go func() {
		_, _, err := c.GetOrBuild(context.Background(), tinyCfg(1))
		errs <- err
	}()
	// Give the second lookup time to park on the flight, then let the
	// builder panic.
	time.Sleep(10 * time.Millisecond)
	close(release)

	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			var be *BuildError
			if !errors.As(err, &be) {
				t.Fatalf("waiter %d: %v (%T)", i, err, err)
			}
			if !be.Retryable() || be.Stack == "" || !strings.Contains(be.Stack, "goroutine") {
				t.Fatalf("build error lacks retryability or stack: %+v", be)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("waiter wedged on a panicked flight")
		}
	}

	// The failed fill left no residue: a healthy builder succeeds.
	c.SetBuilder(core.NewExperiment)
	if _, hit, err := c.GetOrBuild(context.Background(), tinyCfg(1)); err != nil || hit {
		t.Fatalf("post-panic lookup: hit=%v err=%v", hit, err)
	}
	if c.Len() != 1 {
		t.Fatalf("entries %d, want 1", c.Len())
	}
}

// TestInjectedFillFaults arms the simcache.fill site and checks the
// two survivable fault kinds: an injected error surfaces as retryable
// without running the builder, and an injected panic is recovered into
// a *BuildError.
func TestInjectedFillFaults(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	c := New(0)
	var builds atomic.Int64
	c.SetBuilder(func(cfg core.ExperimentConfig) (*core.Experiment, error) {
		builds.Add(1)
		return core.NewExperiment(cfg)
	})

	// One injected error, then clean.
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteCacheFill: {Kind: faultinject.KindError, Probability: 1, Count: 1},
	}); err != nil {
		t.Fatal(err)
	}
	_, _, err := c.GetOrBuild(context.Background(), tinyCfg(1))
	if !faultinject.IsInjected(err) {
		t.Fatalf("first fill: %v", err)
	}
	if builds.Load() != 0 {
		t.Fatal("builder ran despite the injected fill error")
	}
	if _, hit, err := c.GetOrBuild(context.Background(), tinyCfg(1)); err != nil || hit {
		t.Fatalf("retry after injected error: hit=%v err=%v", hit, err)
	}

	// An injected panic is recovered, not propagated.
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteCacheFill: {Kind: faultinject.KindPanic, Probability: 1, Count: 1},
	}); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.GetOrBuild(context.Background(), tinyCfg(2))
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("injected panic surfaced as %v (%T)", err, err)
	}
	if _, ok := be.PanicValue.(faultinject.Panic); !ok {
		t.Fatalf("panic value %v (%T)", be.PanicValue, be.PanicValue)
	}
}

// TestWedgeRecoveryUnderConcurrency hammers a cache whose builder
// panics on a fraction of fills, checking no goroutine is ever left
// waiting and the cache converges to serving every key.
func TestWedgeRecoveryUnderConcurrency(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	c.SetBuilder(func(cfg core.ExperimentConfig) (*core.Experiment, error) {
		if calls.Add(1)%3 == 1 {
			panic("periodic build failure")
		}
		return core.NewExperiment(cfg)
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				cfg := tinyCfg(uint64(k + 1))
				for attempt := 0; attempt < 10; attempt++ {
					if _, _, err := c.GetOrBuild(context.Background(), cfg); err == nil {
						return
					}
				}
				t.Errorf("goroutine %d: key %d never built", g, k)
			}
		}(g)
	}
	wg.Wait()
}
