package simcache

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
)

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s := openStore(t)
	key := ResultKey("sweep", []byte(`{"figure":"3"}`))
	payload := []byte(`{"rows":[1,2,3]}`)
	if err := s.Put(context.Background(), "acme", key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get: ok=%v payload=%q", ok, got)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Puts != 1 || st.Hits != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].Tenant != "acme" || st.Tenants[0].SizeBytes != int64(len(payload)) {
		t.Fatalf("tenant usage: %+v", st.Tenants)
	}
}

// TestStoreConcurrentPutsAccountOnce races many Puts of one key: the
// entry must be accounted exactly once, globally and per tenant, so
// disk-quota checks don't see inflated usage until the next restart
// scan. The existence check and rename share one critical section.
func TestStoreConcurrentPutsAccountOnce(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"rows":[4,5,6]}`)
	key := ResultKey("sweep", payload)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(context.Background(), "acme", key, payload); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Entries != 1 || st.SizeBytes != int64(len(payload)) {
		t.Fatalf("gauges after racing puts: %+v", st)
	}
	if b := s.TenantBytes("acme"); b != int64(len(payload)) {
		t.Fatalf("tenant bytes after racing puts: %d, want %d", b, len(payload))
	}
	// The restart scan agrees with the incremental gauges.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2 := s2.Stats(); st2.Entries != st.Entries || st2.SizeBytes != st.SizeBytes {
		t.Fatalf("scan disagrees with gauges: %+v vs %+v", st2, st)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := ResultKey("simulate", []byte(`{"nodes":16}`))
	if err := s.Put(context.Background(), "acme", key, []byte("result-bytes")); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok || string(got) != "result-bytes" {
		t.Fatalf("reopened store lost the entry: ok=%v %q", ok, got)
	}
	if b := s2.TenantBytes("acme"); b != int64(len("result-bytes")) {
		t.Fatalf("tenant accounting not rebuilt by scan: %d", b)
	}
}

// entryPath digs out the single entry file under the store root.
func entryPath(t *testing.T, s *Store, key string) string {
	t.Helper()
	p := filepath.Join(s.Dir(), key[:2], key)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("entry file missing: %v", err)
	}
	return p
}

// TestStoreCorruptPayloadBitIdentical is the satellite acceptance: a
// backing-store entry whose payload bytes were flipped must be
// quarantined and reported as a miss, and the recomputed result the
// caller falls back to must be bit-identical to the original bytes —
// the same degrade-to-recompute contract the baseline cache's breaker
// provides.
func TestStoreCorruptPayloadBitIdentical(t *testing.T) {
	opts := core.Options{Nodes: 16, Iterations: 2, Reps: 1, Seed: 1, Workloads: []string{"minife"}}
	fig, err := core.Figure4(opts)
	if err != nil {
		t.Fatal(err)
	}
	var original bytes.Buffer
	if err := fig.WriteJSON(&original); err != nil {
		t.Fatal(err)
	}

	s := openStore(t)
	key := ResultKey("sweep", []byte(`{"figure":"4","nodes":16}`))
	if err := s.Put(context.Background(), "t1", key, original.Bytes()); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte on disk.
	path := entryPath(t, s, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("corrupt entry not quarantined: %+v", st)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine rename missing: %v", err)
	}

	// The bypass path recomputes; determinism makes it bit-identical.
	refig, err := core.Figure4(opts)
	if err != nil {
		t.Fatal(err)
	}
	var recomputed bytes.Buffer
	if err := refig.WriteJSON(&recomputed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recomputed.Bytes(), original.Bytes()) {
		t.Fatal("recomputed result differs from the original bytes")
	}
	// And re-storing after the recompute serves hits again.
	if err := s.Put(context.Background(), "t1", key, recomputed.Bytes()); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, original.Bytes()) {
		t.Fatal("re-stored entry does not round-trip")
	}
}

// TestStoreShortReadQuarantined truncates an entry mid-payload (a
// short read) and mid-header; both must quarantine as misses, not
// error or crash.
func TestStoreShortReadQuarantined(t *testing.T) {
	s := openStore(t)
	key := ResultKey("sweep", []byte("short-read"))
	if err := s.Put(context.Background(), "t1", key, []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, s, key)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-8); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("short entry served as a hit")
	}

	key2 := ResultKey("sweep", []byte("short-header"))
	if err := s.Put(context.Background(), "t1", key2, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path2 := entryPath(t, s, key2)
	if err := os.Truncate(path2, 3); err != nil { // inside the magic
		t.Fatal(err)
	}
	if _, ok := s.Get(key2); ok {
		t.Fatal("truncated-header entry served as a hit")
	}
	if st := s.Stats(); st.Quarantined != 2 {
		t.Fatalf("quarantined %d, want 2", st.Quarantined)
	}
}

// TestStoreScanQuarantinesAndCleans puts entries, corrupts one and
// plants a stray temp file, then reopens: the scan must quarantine the
// damage, remove the stray, and keep the good entry.
func TestStoreScanQuarantinesAndCleans(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := ResultKey("sweep", []byte("good"))
	bad := ResultKey("sweep", []byte("bad"))
	if err := s.Put(context.Background(), "t1", good, []byte("good-payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(context.Background(), "t1", bad, []byte("bad-payload")); err != nil {
		t.Fatal(err)
	}
	badPath := entryPath(t, s, bad)
	data, _ := os.ReadFile(badPath)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, good[:2], tmpPrefix+"stray-123")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Quarantined != 1 || st.Entries != 1 {
		t.Fatalf("scan stats: %+v", st)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived the scan")
	}
	if _, ok := s2.Get(good); !ok {
		t.Fatal("good entry lost by the scan")
	}
	if _, ok := s2.Get(bad); ok {
		t.Fatal("quarantined entry served")
	}
}

// TestStoreWriteFaultDegrades arms store.write: the Put fails and is
// counted, the entry is absent, and a later Put succeeds.
func TestStoreWriteFaultDegrades(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	s := openStore(t)
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteStoreWrite: {Kind: faultinject.KindError, Probability: 1, Count: 1},
	}); err != nil {
		t.Fatal(err)
	}
	key := ResultKey("sweep", []byte("faulted"))
	if err := s.Put(context.Background(), "t1", key, []byte("x")); err == nil {
		t.Fatal("armed put did not fail")
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("failed put left an entry")
	}
	if err := s.Put(context.Background(), "t1", key, []byte("x")); err != nil {
		t.Fatalf("put after budget: %v", err)
	}
	st := s.Stats()
	if st.WriteErrors != 1 || st.Puts != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestStoreRejectsHostileKeys(t *testing.T) {
	s := openStore(t)
	for _, key := range []string{"", "short", "../../../../etc/passwd", "ABCDEF0123456789", "0123456789abcdef/evil"} {
		if err := s.Put(context.Background(), "t", key, []byte("x")); err == nil {
			t.Fatalf("key %q accepted", key)
		}
		if _, ok := s.Get(key); ok {
			t.Fatalf("key %q readable", key)
		}
	}
}

// TestStoreDirSyncsCounted pins the publish ordering: a successful Put
// must fsync the shard directory after the rename (counted in
// DirSyncs), a Put that fails at the injected write fault must not
// reach the directory sync, and a quarantining Get adds one more.
func TestStoreDirSyncsCounted(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	s := openStore(t)
	payload := []byte(`{"rows":[7]}`)
	key := ResultKey("sweep", payload)
	if err := s.Put(context.Background(), "acme", key, payload); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.DirSyncs != 1 {
		t.Fatalf("dir syncs after put: %+v", st)
	}

	// A faulted Put fails before the temp file exists: no rename, so
	// no directory sync either.
	if err := faultinject.Arm(faultinject.Plan{
		faultinject.SiteStoreWrite: {Kind: faultinject.KindError, Probability: 1, Count: 1},
	}); err != nil {
		t.Fatal(err)
	}
	key2 := ResultKey("sweep", []byte("faulted"))
	if err := s.Put(context.Background(), "acme", key2, []byte("x")); err == nil {
		t.Fatal("armed put did not fail")
	}
	if st := s.Stats(); st.DirSyncs != 1 || st.WriteErrors != 1 {
		t.Fatalf("dir syncs after faulted put: %+v", st)
	}

	// Corrupt the entry on disk: the quarantining Get renames it and
	// syncs the shard directory again.
	path := s.path(key)
	if err := os.WriteFile(path, []byte("CESR1\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt entry served")
	}
	if st := s.Stats(); st.DirSyncs != 2 || st.Quarantined != 1 {
		t.Fatalf("dir syncs after quarantine: %+v", st)
	}
}
