// Package simcache memoizes the expensive noise-free baseline of an
// experiment — trace generation, collective expansion and the baseline
// LogGOPS simulation — behind a content-addressed, size-bounded LRU
// cache. The serving daemon (internal/server) evaluates many CE
// scenarios against few distinct (workload, nodes, iterations) points;
// with the cache, each point pays preparation once instead of per
// request.
//
// Entries are keyed by a canonical hash of core.ExperimentConfig
// (defaults resolved first, so configs that behave identically share an
// entry). Concurrent requests for an absent key are coalesced: one
// goroutine builds, the rest wait for its result.
package simcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// Key returns the canonical content hash of a configuration. Two
// configurations with the same key produce bit-identical baselines.
func Key(cfg core.ExperimentConfig) string {
	cfg = cfg.Canonical()
	h := sha256.New()
	fmt.Fprintf(h, "w=%s|n=%d|i=%d|s=%d|net=%d,%d,%d,%g,%g,%d|coll=%d,%d",
		cfg.Workload, cfg.Nodes, cfg.Iterations, cfg.TraceSeed,
		cfg.Net.L, cfg.Net.O, cfg.Net.Gap, cfg.Net.GPerByte, cfg.Net.OPerByte, cfg.Net.S,
		cfg.Collectives.Allreduce, cfg.Collectives.RabenseifnerMin)
	return hex.EncodeToString(h.Sum(nil))
}

// entryOverheadBytes accounts for the fixed parts of a cached baseline
// (result struct, trace headers, list/map bookkeeping).
const entryOverheadBytes = 4096

// opBytes approximates the in-memory footprint of one trace operation
// (29 payload bytes plus padding and slice overhead).
const opBytes = 40

// Cost estimates the resident size of a baseline in bytes. The
// expanded trace dominates; per-rank state (finish times, op slices)
// and a fixed overhead cover the rest.
func Cost(b core.Baseline) int64 {
	var ops int64
	if b.Expanded != nil {
		ops = int64(b.Expanded.NumOps())
	}
	return ops*opBytes + int64(b.Ranks)*64 + entryOverheadBytes
}

// DefaultCapBytes bounds the cache when New is given a non-positive
// capacity: 256 MiB, roughly 50 mid-size (512-node) baselines.
const DefaultCapBytes = 256 << 20

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Entries is the number of cached baselines.
	Entries int `json:"entries"`
	// SizeBytes is the estimated resident size of all entries.
	SizeBytes int64 `json:"size_bytes"`
	// CapBytes is the configured bound.
	CapBytes int64 `json:"cap_bytes"`
	// Hits counts lookups served from a resident entry.
	Hits uint64 `json:"hits"`
	// Coalesced counts lookups that waited on a concurrent build of
	// the same key instead of building their own.
	Coalesced uint64 `json:"coalesced"`
	// Misses counts lookups that built the baseline.
	Misses uint64 `json:"misses"`
	// Evictions counts entries discarded to respect CapBytes.
	Evictions uint64 `json:"evictions"`
	// HitRatio is (Hits+Coalesced) / (Hits+Coalesced+Misses), 0 when
	// no lookups have happened.
	HitRatio float64 `json:"hit_ratio"`
}

// Builder produces the baseline for a configuration on a miss. It runs
// outside the cache lock; the default is core.NewExperiment.
type Builder func(cfg core.ExperimentConfig) (*core.Experiment, error)

// Cache is a size-bounded LRU of prepared experiments. All methods are
// safe for concurrent use.
type Cache struct {
	build Builder

	mu       sync.Mutex
	capBytes int64
	size     int64
	ll       *list.List // front = most recently used; values are *entry
	entries  map[string]*list.Element
	inflight map[string]*flight

	hits      uint64
	coalesced uint64
	misses    uint64
	evictions uint64
}

type entry struct {
	key  string
	exp  *core.Experiment
	cost int64
}

// flight is one in-progress build, shared by every waiter for its key.
type flight struct {
	done chan struct{}
	exp  *core.Experiment
	err  error
}

// New returns a cache bounded to capBytes of estimated baseline size
// (DefaultCapBytes when capBytes <= 0). The most recently inserted
// entry is always retained, even when it alone exceeds the bound.
func New(capBytes int64) *Cache {
	if capBytes <= 0 {
		capBytes = DefaultCapBytes
	}
	return &Cache{
		build:    core.NewExperiment,
		capBytes: capBytes,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*flight{},
	}
}

// SetBuilder replaces the baseline builder (tests use this to count or
// fail builds). Not safe to call concurrently with lookups.
func (c *Cache) SetBuilder(b Builder) { c.build = b }

// Get returns the cached experiment for cfg without building, and
// whether it was present.
func (c *Cache) Get(cfg core.ExperimentConfig) (*core.Experiment, bool) {
	key := Key(cfg)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*entry).exp, true
}

// GetOrBuild returns the experiment for cfg, building and inserting
// the baseline on a miss. hit reports whether the baseline was already
// resident or under construction by another goroutine; err is the
// builder's error (not cached — a later lookup retries) or ctx.Err()
// if the context expires while waiting on a concurrent build. The
// build itself is not interrupted by ctx: the baseline stays useful
// for every later request, so abandoning it would waste the work.
func (c *Cache) GetOrBuild(ctx context.Context, cfg core.ExperimentConfig) (exp *core.Experiment, hit bool, err error) {
	key := Key(cfg)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*entry).exp, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.exp, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	func() {
		// close runs whatever the builder does — a panicking builder
		// must not leave every waiter for this key blocked forever on
		// a flight that never completes.
		defer close(f.done)
		f.exp, f.err = c.runBuild(ctx, cfg)
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insertLocked(key, f.exp)
	}
	c.mu.Unlock()
	return f.exp, false, f.err
}

// BuildError is the typed failure of a fill whose builder panicked,
// with the goroutine stack captured at recovery. It is retryable: a
// later lookup of the same key re-runs the builder (errors are never
// cached), and a transient panic heals on the retry.
type BuildError struct {
	// PanicValue is the value the builder panicked with.
	PanicValue any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("simcache: builder panicked: %v", e.PanicValue)
}

// Retryable marks the failed fill eligible for retry by the job layer.
func (e *BuildError) Retryable() bool { return true }

// runBuild executes the builder for one flight: it fires the
// simcache.fill fault site first and converts a panicking builder into
// a *BuildError so the flight always completes.
func (c *Cache) runBuild(ctx context.Context, cfg core.ExperimentConfig) (exp *core.Experiment, err error) {
	defer func() {
		if r := recover(); r != nil {
			exp = nil
			err = &BuildError{PanicValue: r, Stack: string(debug.Stack())}
		}
	}()
	if err := faultinject.Fire(ctx, faultinject.SiteCacheFill); err != nil {
		return nil, fmt.Errorf("simcache: fill: %w", err)
	}
	return c.build(cfg)
}

// insertLocked adds the entry at the LRU front and evicts from the
// back until the size bound holds. c.mu must be held.
func (c *Cache) insertLocked(key string, exp *core.Experiment) {
	if _, ok := c.entries[key]; ok {
		return // a racing build of the same key already inserted
	}
	e := &entry{key: key, exp: exp, cost: Cost(exp.Prepared())}
	c.entries[key] = c.ll.PushFront(e)
	c.size += e.cost
	for c.size > c.capBytes && c.ll.Len() > 1 {
		back := c.ll.Back()
		ev := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.entries, ev.key)
		c.size -= ev.cost
		c.evictions++
	}
}

// Provider adapts the cache to core.Options.Experiments: a builder
// that serves baselines from the cache, building and inserting on a
// miss. ctx bounds waiting on a concurrent fill of the same key (the
// build itself is never interrupted; see GetOrBuild). Cluster workers
// install this so shards sharing a (workload, nodes) point — which
// consistent-hash placement steers to the same worker — pay baseline
// preparation once.
func (c *Cache) Provider(ctx context.Context) func(core.ExperimentConfig) (*core.Experiment, error) {
	return func(cfg core.ExperimentConfig) (*core.Experiment, error) {
		exp, _, err := c.GetOrBuild(ctx, cfg)
		return exp, err
	}
}

// Len returns the number of cached baselines.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Entries:   c.ll.Len(),
		SizeBytes: c.size,
		CapBytes:  c.capBytes,
		Hits:      c.hits,
		Coalesced: c.coalesced,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
	if total := s.Hits + s.Coalesced + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits+s.Coalesced) / float64(total)
	}
	return s
}
