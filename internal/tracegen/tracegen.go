// Package tracegen builds synthetic MPI operation traces for the nine
// workloads the paper evaluates (Table I).
//
// The paper traced real runs of each application on a Cray XC40 and
// replayed/extrapolated them with LogGOPSim. Those traces are not
// available here, so this package substitutes communication skeletons:
// per-iteration loops of halo exchanges and collectives with
// computation grains, parameterized to match each application's known
// communication structure. The paper itself attributes the spread in CE
// sensitivity to one structural property — "the difference in collective
// frequency of each application" (§IV-C) — which is exactly what the
// skeletons control:
//
//   - LAMMPS-lj / LAMMPS-snap: 3D spatial decomposition, six-face halo,
//     thermodynamic allreduce only every ~50 steps. Loosely coupled —
//     the paper's least-affected workloads.
//   - LAMMPS-crack: small 2D crack-propagation problem, four-neighbor
//     halo, tiny timesteps with per-step thermo output. The paper's most
//     affected workload.
//   - LULESH: 27-point stencil (26 neighbours) on a cubic process grid
//     plus the per-step dt allreduce (dtcourant/dthydro). Tightly
//     coupled.
//   - HPCG: 26-neighbour halo for SpMV plus two dot-product allreduces
//     per CG iteration.
//   - CTH: six-face halo with large exchange volumes and a per-step
//     timestep-control allreduce.
//   - MILC: 4D lattice, eight-neighbour halo, CG solver with a
//     per-iteration dot product.
//   - miniFE: six-face halo plus two dot products per CG iteration.
//   - SPARC: six-face halo with large messages and a per-step residual
//     allreduce.
//
// All generators are deterministic in (name, ranks, iterations, seed).
package tracegen

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/trace"
)

const (
	us = int64(1000)
	ms = int64(1000 * 1000)
)

// Stencil selects the neighbour set of the Cartesian decomposition.
type Stencil int

// Stencil kinds.
const (
	// Faces exchanges with the 2*ndims face neighbours.
	Faces Stencil = iota
	// Full exchanges with all 3^ndims-1 neighbours (faces, edges,
	// corners) — the 27-point stencil pattern in 3D.
	Full
)

// Spec is a declarative workload skeleton.
type Spec struct {
	// Name is the workload identifier (Table I spelling, lower case).
	Name string
	// Dims is the dimensionality of the process grid (2, 3 or 4).
	Dims int
	// Stencil selects face-only or full-neighbourhood halo exchange.
	Stencil Stencil
	// HaloBytes is the per-neighbour message size for face neighbours.
	// Edge and corner messages (Full stencil) are scaled down by 16x
	// and 256x, as surface/line/point exchange volumes scale.
	HaloBytes int64
	// ComputeNs is the mean computation grain per iteration.
	ComputeNs int64
	// ComputeJitter is the relative iteration-to-iteration compute
	// imbalance (e.g. 0.02 = ±2%).
	ComputeJitter float64
	// AllreduceEvery performs a control allreduce every k-th iteration
	// (0 = never): timestep control, thermo output, residual checks.
	AllreduceEvery int
	// AllreduceBytes is the payload of the control allreduce.
	AllreduceBytes int64
	// DotsPerIter adds CG-style dot products: small allreduces, each
	// preceded by a fraction of the compute grain (ComputeNs is split
	// across the phases).
	DotsPerIter int
	// BcastSetup emits an input-deck broadcast before the first
	// iteration.
	BcastSetup int64
	// CubeOnly requires a perfect-power process grid (LULESH's cubic
	// domain decomposition).
	CubeOnly bool
}

// specs is the workload table. Compute grains and message sizes are
// order-of-magnitude estimates for the paper's problem sizes; the CE
// sensitivity ordering is driven by collective cadence, which follows
// each code's published structure.
var specs = []Spec{
	{
		Name: "lammps-lj", Dims: 3, Stencil: Faces, HaloBytes: 48 << 10,
		ComputeNs: 90 * ms, ComputeJitter: 0.02,
		AllreduceEvery: 50, AllreduceBytes: 64,
	},
	{
		Name: "lammps-snap", Dims: 3, Stencil: Faces, HaloBytes: 48 << 10,
		ComputeNs: 240 * ms, ComputeJitter: 0.02,
		AllreduceEvery: 50, AllreduceBytes: 64,
	},
	{
		Name: "lammps-crack", Dims: 2, Stencil: Faces, HaloBytes: 16 << 10,
		ComputeNs: 4 * ms, ComputeJitter: 0.03,
		AllreduceEvery: 1, AllreduceBytes: 64,
	},
	{
		Name: "lulesh", Dims: 3, Stencil: Full, HaloBytes: 24 << 10,
		ComputeNs: 18 * ms, ComputeJitter: 0.02,
		AllreduceEvery: 1, AllreduceBytes: 16,
		CubeOnly: true,
	},
	{
		Name: "hpcg", Dims: 3, Stencil: Full, HaloBytes: 12 << 10,
		ComputeNs: 60 * ms, ComputeJitter: 0.01,
		DotsPerIter: 2, AllreduceBytes: 8,
	},
	{
		Name: "cth", Dims: 3, Stencil: Faces, HaloBytes: 96 << 10,
		ComputeNs: 110 * ms, ComputeJitter: 0.03,
		AllreduceEvery: 1, AllreduceBytes: 8,
		BcastSetup: 1 << 20,
	},
	{
		Name: "milc", Dims: 4, Stencil: Faces, HaloBytes: 32 << 10,
		ComputeNs: 70 * ms, ComputeJitter: 0.01,
		AllreduceEvery: 1, AllreduceBytes: 8, DotsPerIter: 1,
	},
	{
		Name: "minife", Dims: 3, Stencil: Faces, HaloBytes: 8 << 10,
		ComputeNs: 45 * ms, ComputeJitter: 0.01,
		DotsPerIter: 2, AllreduceBytes: 8,
	},
	{
		Name: "sparc", Dims: 3, Stencil: Faces, HaloBytes: 64 << 10,
		ComputeNs: 95 * ms, ComputeJitter: 0.03,
		AllreduceEvery: 1, AllreduceBytes: 8,
		BcastSetup: 4 << 20,
	},
}

// Names returns the workload names in the paper's presentation order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Lookup returns the Spec for a workload name.
func Lookup(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("tracegen: unknown workload %q (have %v)", name, Names())
}

// PreferredRanks adjusts a target rank count to the workload's
// decomposition constraint: LULESH needs a perfect cube (the paper
// simulates 16,000 = 125x128 instead of 16,384 for the same reason);
// everything else accepts the target as-is.
func PreferredRanks(name string, target int) int {
	spec, err := Lookup(name)
	if err != nil || !spec.CubeOnly {
		return target
	}
	side := 1
	for (side+1)*(side+1)*(side+1) <= target {
		side++
	}
	return side * side * side
}

// Generate builds the named workload's trace.
func Generate(name string, ranks, iterations int, seed uint64) (*trace.Trace, error) {
	spec, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return FromSpec(spec, ranks, iterations, seed)
}

// FromSpec builds a trace from an explicit skeleton, for ablations and
// custom workloads.
func FromSpec(spec Spec, ranks, iterations int, seed uint64) (*trace.Trace, error) {
	if ranks < 2 {
		return nil, fmt.Errorf("tracegen: need at least 2 ranks, got %d", ranks)
	}
	if iterations < 1 {
		return nil, fmt.Errorf("tracegen: need at least 1 iteration, got %d", iterations)
	}
	if spec.Dims < 1 || spec.Dims > 4 {
		return nil, fmt.Errorf("tracegen: dims must be 1..4, got %d", spec.Dims)
	}
	dims, err := gridDims(ranks, spec.Dims, spec.CubeOnly)
	if err != nil {
		return nil, fmt.Errorf("tracegen: %s: %w", spec.Name, err)
	}
	grid := newGrid(dims)

	tr := &trace.Trace{Name: spec.Name, Ops: make([][]trace.Op, ranks)}
	for r := 0; r < ranks; r++ {
		src := rng.NewStream(seed, uint64(r))
		neighbors := grid.neighbors(int32(r), spec.Stencil)
		ops := make([]trace.Op, 0, iterations*(len(neighbors)*2+6))
		if spec.BcastSetup > 0 {
			ops = append(ops, trace.Bcast(0, spec.BcastSetup))
		}
		for it := 0; it < iterations; it++ {
			// Split the compute grain across the communication phases:
			// one leading chunk plus one per dot product.
			phases := 1 + spec.DotsPerIter
			grain := jitter(src, spec.ComputeNs, spec.ComputeJitter) / int64(phases)
			ops = append(ops, trace.Calc(grain))
			// Halo exchange: post all receives, then all sends, then
			// wait for everything — the standard nonblocking pattern.
			req := int32(0)
			for _, nb := range neighbors {
				ops = append(ops, trace.Irecv(nb.rank, nb.bytes(spec.HaloBytes), 0, req))
				req++
			}
			for _, nb := range neighbors {
				ops = append(ops, trace.Isend(nb.rank, nb.bytes(spec.HaloBytes), 0, req))
				req++
			}
			ops = append(ops, trace.WaitAll())
			// CG-style dot products: compute phase then a small
			// allreduce, repeated.
			for d := 0; d < spec.DotsPerIter; d++ {
				ops = append(ops, trace.Calc(grain))
				ops = append(ops, trace.Allreduce(spec.AllreduceBytes))
			}
			// Control allreduce (dt, thermo, residual) every k-th
			// iteration.
			if spec.AllreduceEvery > 0 && (it+1)%spec.AllreduceEvery == 0 {
				ops = append(ops, trace.Allreduce(spec.AllreduceBytes))
			}
		}
		tr.Ops[r] = ops
	}
	return tr, nil
}

// jitter perturbs a base duration by +/- frac, deterministically.
func jitter(src *rng.Source, base int64, frac float64) int64 {
	if frac <= 0 {
		return base
	}
	return base + int64((src.Float64()*2-1)*frac*float64(base))
}

// gridDims factors ranks into ndims near-equal factors, largest first —
// the MPI_Dims_create contract. CubeOnly requires all factors equal.
func gridDims(ranks, ndims int, cubeOnly bool) ([]int, error) {
	if cubeOnly {
		side := 1
		for side*side*side < ranks {
			side++
		}
		if side*side*side != ranks {
			return nil, fmt.Errorf("%d ranks is not a perfect cube (use PreferredRanks)", ranks)
		}
		return []int{side, side, side}, nil
	}
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 1
	}
	// Assign prime factors, largest first, to the currently smallest
	// dimension.
	for _, f := range primeFactors(ranks) {
		minIdx := 0
		for i := 1; i < ndims; i++ {
			if dims[i] < dims[minIdx] {
				minIdx = i
			}
		}
		dims[minIdx] *= f
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dims)))
	return dims, nil
}

// primeFactors returns the prime factorization of n, largest first.
func primeFactors(n int) []int {
	var out []int
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			out = append(out, f)
			n /= f
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// grid is a periodic Cartesian process grid.
type grid struct {
	dims    []int
	strides []int
}

func newGrid(dims []int) *grid {
	g := &grid{dims: dims, strides: make([]int, len(dims))}
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		g.strides[i] = s
		s *= dims[i]
	}
	return g
}

func (g *grid) coords(rank int32) []int {
	c := make([]int, len(g.dims))
	r := int(rank)
	for i := range g.dims {
		c[i] = r / g.strides[i]
		r %= g.strides[i]
	}
	return c
}

func (g *grid) rank(c []int) int32 {
	r := 0
	for i := range g.dims {
		r += ((c[i]%g.dims[i] + g.dims[i]) % g.dims[i]) * g.strides[i]
	}
	return int32(r)
}

// neighbor is one halo partner with its exchange-volume class.
type neighbor struct {
	rank  int32
	class int // 0 = face, 1 = edge, 2 = corner, ... (off-axis count - 1)
}

// bytes scales the face exchange volume by the neighbour class:
// faces move surfaces, edges move lines (16x smaller), corners move
// points (256x smaller).
func (n neighbor) bytes(faceBytes int64) int64 {
	b := faceBytes >> (4 * uint(n.class))
	if b < 8 {
		b = 8
	}
	return b
}

// neighbors returns the halo partners of a rank, deduplicated (wrapped
// dimensions of extent 1 or 2 can alias) and sorted by rank for
// determinism. Self-aliases are dropped.
func (g *grid) neighbors(rank int32, st Stencil) []neighbor {
	c := g.coords(rank)
	seen := map[int32]neighbor{}
	add := func(off []int) {
		cls := -1
		for _, o := range off {
			if o != 0 {
				cls++
			}
		}
		if cls < 0 {
			return // zero offset
		}
		nc := make([]int, len(c))
		for i := range c {
			nc[i] = c[i] + off[i]
		}
		nr := g.rank(nc)
		if nr == rank {
			return
		}
		if old, ok := seen[nr]; !ok || cls < old.class {
			seen[nr] = neighbor{rank: nr, class: cls}
		}
	}
	switch st {
	case Faces:
		for i := range g.dims {
			off := make([]int, len(g.dims))
			off[i] = 1
			add(off)
			off[i] = -1
			add(off)
		}
	case Full:
		off := make([]int, len(g.dims))
		var walk func(i int)
		walk = func(i int) {
			if i == len(off) {
				add(append([]int(nil), off...))
				return
			}
			for _, o := range []int{-1, 0, 1} {
				off[i] = o
				walk(i + 1)
			}
			off[i] = 0
		}
		walk(0)
	}
	out := make([]neighbor, 0, len(seen))
	for _, nb := range seen {
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].rank < out[j].rank })
	return out
}
