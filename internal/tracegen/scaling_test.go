package tracegen

import (
	"math"
	"testing"
)

func TestWeakScalingIdentity(t *testing.T) {
	spec, err := Lookup("cth")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ScaledSpec(spec, WeakScaling, 64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if out != spec {
		t.Fatal("weak scaling changed the spec")
	}
}

func TestStrongScalingShrinksWork(t *testing.T) {
	spec, err := Lookup("cth") // 3D
	if err != nil {
		t.Fatal(err)
	}
	out, err := ScaledSpec(spec, StrongScaling, 64, 512) // 8x ranks
	if err != nil {
		t.Fatal(err)
	}
	if out.ComputeNs != spec.ComputeNs/8 {
		t.Fatalf("compute = %d, want %d", out.ComputeNs, spec.ComputeNs/8)
	}
	// Surface factor: 8^(2/3) = 4.
	want := int64(float64(spec.HaloBytes) / 4)
	if math.Abs(float64(out.HaloBytes-want)) > 1 {
		t.Fatalf("halo = %d, want ~%d", out.HaloBytes, want)
	}
	// Collective structure unchanged.
	if out.AllreduceEvery != spec.AllreduceEvery || out.DotsPerIter != spec.DotsPerIter {
		t.Fatal("scaling changed collective structure")
	}
}

func TestStrongScalingFloors(t *testing.T) {
	spec, err := Lookup("lammps-crack") // small grain already
	if err != nil {
		t.Fatal(err)
	}
	out, err := ScaledSpec(spec, StrongScaling, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if out.ComputeNs < 1000 || out.HaloBytes < 8 {
		t.Fatalf("floors violated: %d ns, %d B", out.ComputeNs, out.HaloBytes)
	}
}

func TestScaledSpecErrors(t *testing.T) {
	spec, _ := Lookup("cth")
	if _, err := ScaledSpec(spec, StrongScaling, 0, 8); err == nil {
		t.Fatal("zero base accepted")
	}
	if _, err := ScaledSpec(spec, ScalingMode(9), 8, 16); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestStrongScaledTraceGenerates(t *testing.T) {
	spec, err := Lookup("minife")
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := ScaledSpec(spec, StrongScaling, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := FromSpec(scaled, 64, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Strong-scaled iterations are cheaper: total compute per rank is
	// ~1/8th of the weak-scaled trace.
	weak, err := FromSpec(spec, 64, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ComputeStats().CalcNanos*7 > weak.ComputeStats().CalcNanos*2 {
		t.Fatalf("strong scaling did not shrink compute: %d vs %d",
			tr.ComputeStats().CalcNanos, weak.ComputeStats().CalcNanos)
	}
}
