package tracegen

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/collectives"
	"repro/internal/loggopsim"
	"repro/internal/netmodel"
	"repro/internal/trace"
)

func TestNamesMatchPaper(t *testing.T) {
	want := []string{
		"lammps-lj", "lammps-snap", "lammps-crack", "lulesh",
		"hpcg", "cth", "milc", "minife", "sparc",
	}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAllWorkloadsValidate(t *testing.T) {
	for _, name := range Names() {
		n := PreferredRanks(name, 64)
		tr, err := Generate(name, n, 3, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: generated trace invalid: %v", name, err)
		}
		if tr.NumRanks() != n {
			t.Fatalf("%s: %d ranks, want %d", name, tr.NumRanks(), n)
		}
		if tr.Name != name {
			t.Fatalf("%s: trace named %q", name, tr.Name)
		}
	}
}

func TestAllWorkloadsSimulate(t *testing.T) {
	for _, name := range Names() {
		n := PreferredRanks(name, 32)
		tr, err := Generate(name, n, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ex, err := collectives.Expand(tr, collectives.Config{})
		if err != nil {
			t.Fatalf("%s: expand: %v", name, err)
		}
		res, err := loggopsim.Simulate(ex, loggopsim.Config{Net: netmodel.CrayXC40()})
		if err != nil {
			t.Fatalf("%s: simulate: %v", name, err)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%s: zero makespan", name)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Generate("hpcg", 27, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("hpcg", 27, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c, err := Generate("hpcg", 27, 3, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestPreferredRanksLULESH(t *testing.T) {
	cases := map[int]int{
		16384: 15625, // 25^3, the cube closest below 16,384
		8192:  8000,  // 20^3
		4096:  4096,  // 16^3 is exact
		1000:  1000,  // 10^3 exact
		64:    64,    // 4^3 exact
		100:   64,
	}
	for target, want := range cases {
		if got := PreferredRanks("lulesh", target); got != want {
			t.Fatalf("PreferredRanks(lulesh, %d) = %d, want %d", target, got, want)
		}
	}
	// Non-cubic workloads pass through.
	if got := PreferredRanks("hpcg", 100); got != 100 {
		t.Fatalf("PreferredRanks(hpcg, 100) = %d", got)
	}
}

func TestLULESHRejectsNonCube(t *testing.T) {
	if _, err := Generate("lulesh", 100, 2, 1); err == nil {
		t.Fatal("non-cube rank count accepted for lulesh")
	}
}

func TestBadArgs(t *testing.T) {
	if _, err := Generate("hpcg", 1, 2, 1); err == nil {
		t.Fatal("1 rank accepted")
	}
	if _, err := Generate("hpcg", 8, 0, 1); err == nil {
		t.Fatal("0 iterations accepted")
	}
	if _, err := FromSpec(Spec{Name: "x", Dims: 7}, 8, 1, 1); err == nil {
		t.Fatal("dims=7 accepted")
	}
}

func TestCollectiveCadence(t *testing.T) {
	// lammps-lj: allreduce every 50 iterations; over 100 iterations,
	// exactly 2 per rank. lulesh: every iteration.
	lj, err := Generate("lammps-lj", 8, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := countKind(lj.Ops[0], trace.OpAllreduce); got != 2 {
		t.Fatalf("lammps-lj allreduces = %d, want 2", got)
	}
	lul, err := Generate("lulesh", 8, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := countKind(lul.Ops[0], trace.OpAllreduce); got != 10 {
		t.Fatalf("lulesh allreduces = %d, want 10", got)
	}
	// hpcg: 2 dot products per iteration, no control allreduce.
	hp, err := Generate("hpcg", 8, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := countKind(hp.Ops[0], trace.OpAllreduce); got != 20 {
		t.Fatalf("hpcg allreduces = %d, want 20", got)
	}
}

func countKind(ops []trace.Op, k trace.OpKind) int {
	n := 0
	for _, op := range ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}

func TestStencilNeighborCounts(t *testing.T) {
	// On a 4x4x4 grid, faces = 6 neighbours, full = 26.
	g := newGrid([]int{4, 4, 4})
	if got := len(g.neighbors(0, Faces)); got != 6 {
		t.Fatalf("3D faces = %d, want 6", got)
	}
	if got := len(g.neighbors(0, Full)); got != 26 {
		t.Fatalf("3D full = %d, want 26", got)
	}
	// 4D faces = 8 (MILC).
	g4 := newGrid([]int{2, 2, 2, 2})
	if got := len(g4.neighbors(0, Faces)); got > 8 {
		t.Fatalf("4D faces = %d, want <= 8", got)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	g := newGrid([]int{3, 4, 5})
	for r := int32(0); r < 60; r++ {
		for _, nb := range g.neighbors(r, Full) {
			found := false
			for _, back := range g.neighbors(nb.rank, Full) {
				if back.rank == r {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %d -> %d", r, nb.rank)
			}
		}
	}
}

func TestNeighborClassesScaleBytes(t *testing.T) {
	face := neighbor{class: 0}
	edge := neighbor{class: 1}
	corner := neighbor{class: 2}
	b := int64(64 << 10)
	if face.bytes(b) != b {
		t.Fatal("face bytes scaled")
	}
	if edge.bytes(b) != b/16 {
		t.Fatalf("edge bytes = %d, want %d", edge.bytes(b), b/16)
	}
	if corner.bytes(b) != b/256 {
		t.Fatalf("corner bytes = %d, want %d", corner.bytes(b), b/256)
	}
	if (neighbor{class: 8}).bytes(8) < 8 {
		t.Fatal("bytes floor violated")
	}
}

func TestGridDims(t *testing.T) {
	cases := []struct {
		n, ndims int
		want     []int
	}{
		{64, 3, []int{4, 4, 4}},
		{100, 2, []int{10, 10}},
		{24, 3, []int{4, 3, 2}},
		{17, 2, []int{17, 1}},
		{16384, 3, []int{32, 32, 16}},
	}
	for _, c := range cases {
		got, err := gridDims(c.n, c.ndims, false)
		if err != nil {
			t.Fatalf("gridDims(%d,%d): %v", c.n, c.ndims, err)
		}
		prod := 1
		for _, d := range got {
			prod *= d
		}
		if prod != c.n {
			t.Fatalf("gridDims(%d,%d) = %v, product %d", c.n, c.ndims, got, prod)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("gridDims(%d,%d) = %v, want %v", c.n, c.ndims, got, c.want)
		}
	}
}

func TestCoordsRankRoundTrip(t *testing.T) {
	g := newGrid([]int{3, 5, 7})
	for r := int32(0); r < 105; r++ {
		if got := g.rank(g.coords(r)); got != r {
			t.Fatalf("coords/rank round trip failed for %d: %d", r, got)
		}
	}
}

// Property: any valid (workload, ranks, iters) combination yields a
// structurally valid trace whose collectives agree across ranks.
func TestQuickGeneratedTracesValid(t *testing.T) {
	names := Names()
	f := func(nameSel, ranksRaw, itersRaw uint8, seed uint64) bool {
		name := names[int(nameSel)%len(names)]
		ranks := PreferredRanks(name, 2+int(ranksRaw)%62)
		if ranks < 2 {
			ranks = 8
		}
		iters := 1 + int(itersRaw)%5
		tr, err := Generate(name, ranks, iters, seed)
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeJitterBounded(t *testing.T) {
	spec, err := Lookup("cth")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate("cth", 8, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	phases := int64(1 + spec.DotsPerIter)
	for _, op := range tr.Ops[0] {
		if op.Kind != trace.OpCalc {
			continue
		}
		lo := int64(float64(spec.ComputeNs)*(1-spec.ComputeJitter))/phases - 1
		hi := int64(float64(spec.ComputeNs)*(1+spec.ComputeJitter))/phases + 1
		if op.Dur < lo || op.Dur > hi {
			t.Fatalf("calc %d outside jitter bounds [%d,%d]", op.Dur, lo, hi)
		}
	}
}

func BenchmarkGenerateLULESH1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate("lulesh", 1000, 10, 1); err != nil {
			b.Fatal(err)
		}
	}
}
