package tracegen

import (
	"fmt"
	"math"
)

// ScalingMode selects how a workload's per-rank problem size changes
// with the rank count. The paper's traces are weak-scaled (fixed work
// per process, the HPC default); strong scaling shrinks per-rank work
// as ranks grow, which shortens the synchronization interval and makes
// the application *more* sensitive to CE detours — a dimension worth
// sweeping when budgeting reliability for capability runs.
type ScalingMode int

// Scaling modes.
const (
	// WeakScaling keeps the per-rank compute grain and halo volumes
	// fixed (the default; matches the paper's traced runs).
	WeakScaling ScalingMode = iota
	// StrongScaling divides compute per rank by ranks/BaseRanks and
	// shrinks halo messages by the surface-to-volume factor
	// (ranks/BaseRanks)^(2/3 per dimension ratio, approximated as
	// ^(dims-1)/dims).
	StrongScaling
)

// ScaledSpec derives a Spec for the given rank count under a scaling
// mode. baseRanks is the rank count at which the Spec's numbers hold
// (the "traced" size). Weak scaling returns the spec unchanged.
func ScaledSpec(spec Spec, mode ScalingMode, baseRanks, ranks int) (Spec, error) {
	if baseRanks < 1 || ranks < 1 {
		return Spec{}, fmt.Errorf("tracegen: rank counts must be positive (%d, %d)", baseRanks, ranks)
	}
	if mode == WeakScaling || ranks == baseRanks {
		return spec, nil
	}
	if mode != StrongScaling {
		return Spec{}, fmt.Errorf("tracegen: unknown scaling mode %d", mode)
	}
	factor := float64(ranks) / float64(baseRanks)
	out := spec
	// Volume per rank shrinks linearly with the rank count.
	out.ComputeNs = int64(float64(spec.ComputeNs) / factor)
	if out.ComputeNs < 1000 {
		out.ComputeNs = 1000 // floor: 1 us steps
	}
	// Surface (halo) per rank shrinks with the (d-1)/d power of the
	// per-rank volume ratio.
	d := float64(spec.Dims)
	surf := math.Pow(factor, (d-1)/d)
	out.HaloBytes = int64(float64(spec.HaloBytes) / surf)
	if out.HaloBytes < 8 {
		out.HaloBytes = 8
	}
	return out, nil
}
