package trace

import (
	"strings"
	"testing"
)

// twoRankPingPong builds a minimal valid trace used across tests.
func twoRankPingPong() *Trace {
	return &Trace{
		Name: "pingpong",
		Ops: [][]Op{
			{Calc(100), Send(1, 1024, 7), Recv(1, 1024, 8), Allreduce(8)},
			{Calc(50), Recv(0, 1024, 7), Send(0, 1024, 8), Allreduce(8)},
		},
	}
}

func TestValidateOK(t *testing.T) {
	tr := twoRankPingPong()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateEmpty(t *testing.T) {
	tr := &Trace{}
	if err := tr.Validate(); err != ErrEmptyTrace {
		t.Fatalf("empty trace: got %v, want ErrEmptyTrace", err)
	}
}

func TestValidatePeerOutOfRange(t *testing.T) {
	tr := &Trace{Ops: [][]Op{{Send(5, 8, 0)}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
}

func TestValidateSelfSend(t *testing.T) {
	tr := &Trace{Ops: [][]Op{{Send(0, 8, 0)}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("self-send accepted")
	}
}

func TestValidateWildcardRecvOK(t *testing.T) {
	tr := &Trace{Ops: [][]Op{
		{Send(1, 8, 0)},
		{Recv(AnySource, 8, AnyTag)},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("wildcard recv rejected: %v", err)
	}
}

func TestValidateUnknownWait(t *testing.T) {
	tr := &Trace{Ops: [][]Op{{Wait(3)}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("wait on unknown request accepted")
	}
}

func TestValidateRequestReuse(t *testing.T) {
	tr := &Trace{Ops: [][]Op{
		{Isend(1, 8, 0, 1), Isend(1, 8, 0, 1), WaitAll()},
		{Recv(0, 8, 0), Recv(0, 8, 0)},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("reused outstanding request accepted")
	}
}

func TestValidateUnwaitedRequest(t *testing.T) {
	tr := &Trace{Ops: [][]Op{
		{Isend(1, 8, 0, 1)},
		{Recv(0, 8, 0)},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("unwaited request accepted")
	}
}

func TestValidateWaitAllClears(t *testing.T) {
	tr := &Trace{Ops: [][]Op{
		{Isend(1, 8, 0, 1), Irecv(1, 8, 1, 2), WaitAll(), Isend(1, 8, 2, 1), Wait(1)},
		{Recv(0, 8, 0), Send(0, 8, 1), Recv(0, 8, 2)},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("waitall trace rejected: %v", err)
	}
}

func TestValidateCollectiveMismatch(t *testing.T) {
	tr := &Trace{Ops: [][]Op{
		{Barrier()},
		{Allreduce(8)},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("mismatched collective sequence accepted")
	}
}

func TestValidateCollectiveCountMismatch(t *testing.T) {
	tr := &Trace{Ops: [][]Op{
		{Barrier(), Barrier()},
		{Barrier()},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("mismatched collective count accepted")
	}
}

func TestValidateNegativeSize(t *testing.T) {
	tr := &Trace{Ops: [][]Op{{{Kind: OpSend, Peer: 1, Size: -5}}, {}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestValidateRootOutOfRange(t *testing.T) {
	tr := &Trace{Ops: [][]Op{{Bcast(9, 8)}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestComputeStats(t *testing.T) {
	tr := twoRankPingPong()
	s := tr.ComputeStats()
	if s.Ranks != 2 {
		t.Fatalf("Ranks = %d", s.Ranks)
	}
	if s.Ops != 8 {
		t.Fatalf("Ops = %d, want 8", s.Ops)
	}
	if s.Sends != 2 || s.Recvs != 2 {
		t.Fatalf("Sends/Recvs = %d/%d, want 2/2", s.Sends, s.Recvs)
	}
	if s.Collectives != 2 {
		t.Fatalf("Collectives = %d, want 2", s.Collectives)
	}
	if s.CalcNanos != 150 {
		t.Fatalf("CalcNanos = %d, want 150", s.CalcNanos)
	}
	if s.Bytes != 2048 {
		t.Fatalf("Bytes = %d, want 2048", s.Bytes)
	}
}

func TestClone(t *testing.T) {
	tr := twoRankPingPong()
	cp := tr.Clone()
	cp.Ops[0][0].Dur = 999
	if tr.Ops[0][0].Dur == 999 {
		t.Fatal("clone shares op storage with original")
	}
	if cp.Name != tr.Name || cp.NumRanks() != tr.NumRanks() {
		t.Fatal("clone metadata mismatch")
	}
}

func TestKindString(t *testing.T) {
	cases := map[OpKind]string{
		OpCalc: "calc", OpSend: "send", OpAllreduce: "allreduce", OpScatter: "scatter",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if got := OpKind(200).String(); !strings.Contains(got, "200") {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestIsCollective(t *testing.T) {
	for _, k := range []OpKind{OpBarrier, OpBcast, OpReduce, OpAllreduce, OpAllgather, OpAlltoall, OpGather, OpScatter} {
		if !k.IsCollective() {
			t.Fatalf("%s not marked collective", k)
		}
	}
	for _, k := range []OpKind{OpCalc, OpSend, OpRecv, OpIsend, OpIrecv, OpWait, OpWaitAll} {
		if k.IsCollective() {
			t.Fatalf("%s wrongly marked collective", k)
		}
	}
}

func TestIsRooted(t *testing.T) {
	for _, k := range []OpKind{OpBcast, OpReduce, OpGather, OpScatter} {
		if !k.IsRooted() {
			t.Fatalf("%s not marked rooted", k)
		}
	}
	if OpAllreduce.IsRooted() || OpBarrier.IsRooted() {
		t.Fatal("non-rooted collective marked rooted")
	}
}
