package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTextRoundTripWildcards(t *testing.T) {
	tr := &Trace{
		Name: "wild",
		Ops: [][]Op{
			{Send(1, 8, 0)},
			{Recv(AnySource, 8, AnyTag), Irecv(AnySource, 16, AnyTag, 3), Wait(3)},
		},
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recv -1 8 -1") {
		t.Fatalf("wildcards not encoded as -1:\n%s", buf.String())
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("wildcard round trip mismatch: %+v", got)
	}
}

func TestBinaryRoundTripWildcards(t *testing.T) {
	tr := &Trace{Ops: [][]Op{
		{Recv(AnySource, 8, AnyTag)},
	}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ops[0][0].Peer != AnySource || got.Ops[0][0].Tag != AnyTag {
		t.Fatalf("wildcards mangled: %+v", got.Ops[0][0])
	}
}

func TestBinaryHostileHeaders(t *testing.T) {
	// Headers declaring absurd counts must fail fast with bounded
	// memory (regression for the fuzz-found OOM).
	cases := [][]byte{
		// huge op count on rank 0
		[]byte("CETR\x01\x00\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"),
		// huge rank count, no payload
		[]byte("CETR\x01\x00\xff\xff\xff\x1f"),
		// huge name length
		[]byte("CETR\x01\xff\xff\xff\x7f"),
	}
	for i, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Fatalf("hostile header %d accepted", i)
		}
	}
}

func TestBinaryEmptyTraceRoundTrip(t *testing.T) {
	tr := &Trace{Name: "empty", Ops: [][]Op{nil, nil, nil}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRanks() != 3 || got.NumOps() != 0 {
		t.Fatalf("empty ranks mangled: %d/%d", got.NumRanks(), got.NumOps())
	}
}

func TestTextLargeValues(t *testing.T) {
	tr := &Trace{Ops: [][]Op{
		{Calc(1 << 60), Send(1, 1<<40, 1<<20)},
		{Recv(0, 1<<40, 1<<20)},
	}}
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ops[0][0].Dur != 1<<60 || got.Ops[0][1].Size != 1<<40 {
		t.Fatalf("large values mangled: %+v", got.Ops[0])
	}
}
