// Package trace defines the MPI operation traces consumed by the
// simulator.
//
// A trace records, for every rank, the ordered sequence of MPI operations
// and intervening computation intervals the application executed. This is
// the same information LogGOPSim consumes from its "goal" schedules: the
// simulator replays the operations, reconstructing every communication
// dependency (including transitive dependencies between ranks that never
// communicate directly).
//
// Collective operations appear as single logical ops in traces; the
// collectives package expands them into point-to-point schedules at
// simulation time so that algorithm choice is a simulation parameter
// rather than baked into the trace.
package trace

import (
	"errors"
	"fmt"
)

// OpKind enumerates the trace operation types.
type OpKind uint8

// Operation kinds. P2P operations carry Peer/Size/Tag; nonblocking ones
// also carry a request identifier consumed by a later Wait. Collectives
// carry Size (bytes contributed per rank) and, when rooted, Peer (root).
const (
	OpCalc    OpKind = iota // local computation for Dur nanoseconds
	OpSend                  // blocking send to Peer
	OpRecv                  // blocking receive from Peer
	OpIsend                 // nonblocking send, completes at Wait(Req)
	OpIrecv                 // nonblocking receive, completes at Wait(Req)
	OpWait                  // wait for request Req
	OpWaitAll               // wait for all outstanding requests
	OpBarrier
	OpBcast  // root = Peer
	OpReduce // root = Peer
	OpAllreduce
	OpAllgather
	OpAlltoall
	OpGather  // root = Peer
	OpScatter // root = Peer
	numOpKinds
)

// AnySource is the wildcard receive source (MPI_ANY_SOURCE).
const AnySource int32 = -1

// AnyTag is the wildcard receive tag (MPI_ANY_TAG).
const AnyTag int32 = -1

var kindNames = [...]string{
	OpCalc:      "calc",
	OpSend:      "send",
	OpRecv:      "recv",
	OpIsend:     "isend",
	OpIrecv:     "irecv",
	OpWait:      "wait",
	OpWaitAll:   "waitall",
	OpBarrier:   "barrier",
	OpBcast:     "bcast",
	OpReduce:    "reduce",
	OpAllreduce: "allreduce",
	OpAllgather: "allgather",
	OpAlltoall:  "alltoall",
	OpGather:    "gather",
	OpScatter:   "scatter",
}

// String returns the lower-case mnemonic used in the text codec.
func (k OpKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// IsCollective reports whether the kind is a collective operation.
func (k OpKind) IsCollective() bool {
	switch k {
	case OpBarrier, OpBcast, OpReduce, OpAllreduce, OpAllgather, OpAlltoall, OpGather, OpScatter:
		return true
	}
	return false
}

// IsRooted reports whether the collective has a distinguished root rank.
func (k OpKind) IsRooted() bool {
	switch k {
	case OpBcast, OpReduce, OpGather, OpScatter:
		return true
	}
	return false
}

// Op is a single trace operation. The meaning of the fields depends on
// Kind; unused fields are zero.
type Op struct {
	Kind OpKind
	Peer int32 // p2p peer, or collective root, or AnySource for wildcard recv
	Tag  int32 // message tag, or AnyTag
	Req  int32 // request id for Isend/Irecv/Wait (unique per rank between waits)
	Size int64 // message bytes (p2p) or per-rank contribution (collective)
	Dur  int64 // computation nanoseconds (OpCalc only)
}

// Calc returns a computation op of d nanoseconds.
func Calc(d int64) Op { return Op{Kind: OpCalc, Dur: d} }

// Send returns a blocking send op.
func Send(peer int32, size int64, tag int32) Op {
	return Op{Kind: OpSend, Peer: peer, Size: size, Tag: tag}
}

// Recv returns a blocking receive op.
func Recv(peer int32, size int64, tag int32) Op {
	return Op{Kind: OpRecv, Peer: peer, Size: size, Tag: tag}
}

// Isend returns a nonblocking send op with request id req.
func Isend(peer int32, size int64, tag, req int32) Op {
	return Op{Kind: OpIsend, Peer: peer, Size: size, Tag: tag, Req: req}
}

// Irecv returns a nonblocking receive op with request id req.
func Irecv(peer int32, size int64, tag, req int32) Op {
	return Op{Kind: OpIrecv, Peer: peer, Size: size, Tag: tag, Req: req}
}

// Wait returns a wait op for request id req.
func Wait(req int32) Op { return Op{Kind: OpWait, Req: req} }

// WaitAll returns a wait op for all outstanding requests on the rank.
func WaitAll() Op { return Op{Kind: OpWaitAll} }

// Barrier returns a barrier op.
func Barrier() Op { return Op{Kind: OpBarrier} }

// Allreduce returns an allreduce op contributing size bytes per rank.
func Allreduce(size int64) Op { return Op{Kind: OpAllreduce, Size: size} }

// Bcast returns a broadcast op rooted at root.
func Bcast(root int32, size int64) Op { return Op{Kind: OpBcast, Peer: root, Size: size} }

// Reduce returns a reduce op rooted at root.
func Reduce(root int32, size int64) Op { return Op{Kind: OpReduce, Peer: root, Size: size} }

// Allgather returns an allgather op contributing size bytes per rank.
func Allgather(size int64) Op { return Op{Kind: OpAllgather, Size: size} }

// Alltoall returns an alltoall op exchanging size bytes per pair.
func Alltoall(size int64) Op { return Op{Kind: OpAlltoall, Size: size} }

// Gather returns a gather op rooted at root.
func Gather(root int32, size int64) Op { return Op{Kind: OpGather, Peer: root, Size: size} }

// Scatter returns a scatter op rooted at root.
func Scatter(root int32, size int64) Op { return Op{Kind: OpScatter, Peer: root, Size: size} }

// Trace holds the per-rank operation sequences of one application run.
type Trace struct {
	// Name identifies the workload (e.g. "lulesh"). Informational.
	Name string
	// Ops[r] is the ordered operation list of rank r.
	Ops [][]Op
}

// NumRanks returns the number of ranks in the trace.
func (t *Trace) NumRanks() int { return len(t.Ops) }

// NumOps returns the total operation count across all ranks.
func (t *Trace) NumOps() int {
	n := 0
	for _, ops := range t.Ops {
		n += len(ops)
	}
	return n
}

// Stats summarizes a trace's contents.
type Stats struct {
	Ranks       int
	Ops         int
	Sends       int   // blocking + nonblocking sends
	Recvs       int   // blocking + nonblocking receives
	Collectives int   // collective ops across all ranks
	CalcNanos   int64 // total computation time across all ranks
	Bytes       int64 // total bytes posted by sends
}

// ComputeStats scans the trace and returns summary counts.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Ranks: t.NumRanks()}
	for _, ops := range t.Ops {
		s.Ops += len(ops)
		for _, op := range ops {
			switch op.Kind {
			case OpCalc:
				s.CalcNanos += op.Dur
			case OpSend, OpIsend:
				s.Sends++
				s.Bytes += op.Size
			case OpRecv, OpIrecv:
				s.Recvs++
			default:
				if op.Kind.IsCollective() {
					s.Collectives++
				}
			}
		}
	}
	return s
}

// Validation errors.
var (
	ErrEmptyTrace = errors.New("trace: no ranks")
)

// Validate checks structural invariants:
//   - at least one rank;
//   - p2p peers and collective roots are valid ranks (or AnySource for recvs);
//   - nonblocking requests are waited on exactly once and not reused while
//     outstanding;
//   - every rank participates in the same sequence of collectives;
//   - sizes and durations are non-negative.
//
// It does not verify point-to-point send/recv matching (that is the
// simulator's job, and mismatches surface as deadlock diagnostics).
func (t *Trace) Validate() error {
	n := int32(t.NumRanks())
	if n == 0 {
		return ErrEmptyTrace
	}
	var collSeq0 []OpKind
	for r, ops := range t.Ops {
		outstanding := map[int32]bool{}
		var collSeq []OpKind
		for i, op := range ops {
			if op.Size < 0 {
				return fmt.Errorf("trace: rank %d op %d (%s): negative size %d", r, i, op.Kind, op.Size)
			}
			if op.Dur < 0 {
				return fmt.Errorf("trace: rank %d op %d (%s): negative duration %d", r, i, op.Kind, op.Dur)
			}
			switch op.Kind {
			case OpCalc, OpBarrier, OpAllreduce, OpAllgather, OpAlltoall, OpWaitAll:
				// No peer to validate.
			case OpSend, OpIsend:
				if op.Peer < 0 || op.Peer >= n {
					return fmt.Errorf("trace: rank %d op %d (%s): peer %d out of range [0,%d)", r, i, op.Kind, op.Peer, n)
				}
				if op.Peer == int32(r) {
					return fmt.Errorf("trace: rank %d op %d (%s): self-send", r, i, op.Kind)
				}
			case OpRecv, OpIrecv:
				if op.Peer != AnySource && (op.Peer < 0 || op.Peer >= n) {
					return fmt.Errorf("trace: rank %d op %d (%s): peer %d out of range", r, i, op.Kind, op.Peer)
				}
			case OpBcast, OpReduce, OpGather, OpScatter:
				if op.Peer < 0 || op.Peer >= n {
					return fmt.Errorf("trace: rank %d op %d (%s): root %d out of range", r, i, op.Kind, op.Peer)
				}
			case OpWait:
				if !outstanding[op.Req] {
					return fmt.Errorf("trace: rank %d op %d: wait on unknown request %d", r, i, op.Req)
				}
			default:
				return fmt.Errorf("trace: rank %d op %d: unknown kind %d", r, i, op.Kind)
			}
			switch op.Kind {
			case OpIsend, OpIrecv:
				if outstanding[op.Req] {
					return fmt.Errorf("trace: rank %d op %d (%s): request %d already outstanding", r, i, op.Kind, op.Req)
				}
				outstanding[op.Req] = true
			case OpWait:
				delete(outstanding, op.Req)
			case OpWaitAll:
				outstanding = map[int32]bool{}
			}
			if op.Kind.IsCollective() {
				collSeq = append(collSeq, op.Kind)
			}
		}
		if len(outstanding) != 0 {
			return fmt.Errorf("trace: rank %d: %d requests never waited on", r, len(outstanding))
		}
		if r == 0 {
			collSeq0 = collSeq
		} else if len(collSeq) != len(collSeq0) {
			return fmt.Errorf("trace: rank %d has %d collectives, rank 0 has %d", r, len(collSeq), len(collSeq0))
		} else {
			for i := range collSeq {
				if collSeq[i] != collSeq0[i] {
					return fmt.Errorf("trace: rank %d collective %d is %s, rank 0 has %s", r, i, collSeq[i], collSeq0[i])
				}
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	out := &Trace{Name: t.Name, Ops: make([][]Op, len(t.Ops))}
	for r, ops := range t.Ops {
		out.Ops[r] = append([]Op(nil), ops...)
	}
	return out
}
