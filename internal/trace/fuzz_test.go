package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText must never panic on arbitrary input, and every trace it
// accepts must re-encode and re-parse to the same rank/op counts.
func FuzzReadText(f *testing.F) {
	f.Add("trace demo\nranks 2\nrank 0\ncalc 100\nsend 1 8 0\nrank 1\nrecv 0 8 0\n")
	f.Add("ranks 1\nrank 0\nallreduce 64\nbarrier\nwaitall\n")
	f.Add("# comment\nranks 3\nrank 2\nbcast 0 8\n")
	f.Add("ranks 2\nrank 0\nisend 1 8 0 1\nwait 1\nrank 1\nirecv 0 8 0 2\nwait 2\n")
	f.Add("garbage\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace failed to parse: %v", err)
		}
		if back.NumRanks() != tr.NumRanks() || back.NumOps() != tr.NumOps() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				tr.NumRanks(), tr.NumOps(), back.NumRanks(), back.NumOps())
		}
	})
}

// FuzzReadBinary must never panic or over-allocate on arbitrary bytes.
func FuzzReadBinary(f *testing.F) {
	tr := &Trace{Name: "seed", Ops: [][]Op{
		{Calc(10), Send(1, 64, 1)},
		{Recv(0, 64, 1), Allreduce(8)},
	}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CETR"))
	f.Add([]byte("CETR\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must round trip.
		var out bytes.Buffer
		if err := WriteBinary(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
	})
}
