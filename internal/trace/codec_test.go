package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomTrace builds a structurally valid random trace for round-trip
// property tests.
func randomTrace(r *rand.Rand, maxRanks, maxOps int) *Trace {
	n := 1 + r.Intn(maxRanks)
	t := &Trace{Name: "rand", Ops: make([][]Op, n)}
	for rank := 0; rank < n; rank++ {
		nOps := r.Intn(maxOps)
		var ops []Op
		req := int32(0)
		var outstanding []int32
		for i := 0; i < nOps; i++ {
			switch r.Intn(8) {
			case 0:
				ops = append(ops, Calc(int64(r.Intn(1e6))))
			case 1:
				if n > 1 {
					peer := int32(r.Intn(n))
					if peer == int32(rank) {
						peer = (peer + 1) % int32(n)
					}
					ops = append(ops, Send(peer, int64(r.Intn(1<<20)), int32(r.Intn(100))))
				}
			case 2:
				ops = append(ops, Recv(AnySource, int64(r.Intn(1<<20)), AnyTag))
			case 3:
				if n > 1 {
					peer := int32(r.Intn(n))
					if peer == int32(rank) {
						peer = (peer + 1) % int32(n)
					}
					ops = append(ops, Isend(peer, 64, 1, req))
					outstanding = append(outstanding, req)
					req++
				}
			case 4:
				if len(outstanding) > 0 {
					ops = append(ops, Wait(outstanding[0]))
					outstanding = outstanding[1:]
				}
			case 5:
				ops = append(ops, WaitAll())
				outstanding = nil
			case 6:
				ops = append(ops, Bcast(int32(r.Intn(n)), int64(r.Intn(4096))))
			case 7:
				ops = append(ops, Allreduce(int64(r.Intn(4096))))
			}
		}
		if len(outstanding) > 0 {
			ops = append(ops, WaitAll())
		}
		t.Ops[rank] = ops
	}
	return t
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := twoRankPingPong()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("binary round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		tr := randomTrace(r, 8, 40)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("iteration %d: round trip mismatch", i)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("NOPE not a trace"))
	if err != ErrBadMagic {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	tr := twoRankPingPong()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{1, 5, len(data) / 2, len(data) - 1} {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestBinaryUnknownKind(t *testing.T) {
	tr := &Trace{Ops: [][]Op{{{Kind: OpKind(99)}}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("unknown kind not rejected on decode")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := &Trace{
		Name: "mix",
		Ops: [][]Op{
			{Calc(10), Isend(1, 256, 3, 0), Irecv(1, 256, 4, 1), Wait(0), Wait(1),
				Barrier(), Allreduce(16), Allgather(32), Alltoall(64),
				Bcast(0, 8), Reduce(1, 8), Gather(0, 8), Scatter(1, 8), WaitAll()},
			{Recv(0, 256, 3), Send(0, 256, 4),
				Barrier(), Allreduce(16), Allgather(32), Alltoall(64),
				Bcast(0, 8), Reduce(1, 8), Gather(0, 8), Scatter(1, 8)},
		},
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("text round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestTextComments(t *testing.T) {
	in := `# a comment
trace demo
ranks 2

rank 0
  calc 100
  send 1 8 0
rank 1
  recv 0 8 0
`
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "demo" || tr.NumRanks() != 2 || len(tr.Ops[0]) != 2 {
		t.Fatalf("parsed trace wrong: %+v", tr)
	}
}

func TestTextErrors(t *testing.T) {
	cases := []string{
		"calc 5",                       // op before any header
		"ranks 2\ncalc 5",              // op before rank header
		"ranks 2\nrank 5\ncalc 1",      // rank out of range
		"ranks 2\nrank 0\nbogus 1",     // unknown op
		"ranks 2\nrank 0\nsend 1",      // missing args
		"ranks 0",                      // bad rank count
		"ranks 2\nrank 0\ncalc xyz",    // bad integer
		"rank 0\ncalc 1",               // rank before ranks
		"ranks 2\nrank 0\nsend 1 8 ab", // bad tag
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestTextEmpty(t *testing.T) {
	if _, err := ReadText(strings.NewReader("")); err != ErrEmptyTrace {
		t.Fatalf("empty input: got %v, want ErrEmptyTrace", err)
	}
}

// Property: binary round trip preserves arbitrary single ops with
// wildcard-capable fields.
func TestQuickBinaryOpRoundTrip(t *testing.T) {
	f := func(peer, tag, req int32, size, dur uint32, kindSel uint8) bool {
		kind := OpKind(kindSel % uint8(numOpKinds))
		tr := &Trace{Ops: [][]Op{{{
			Kind: kind, Peer: peer, Tag: tag, Req: req,
			Size: int64(size), Dur: int64(dur),
		}}}}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBinaryEncode(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := randomTrace(r, 16, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryDecode(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := randomTrace(r, 16, 200)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
