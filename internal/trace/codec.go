package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary codec
//
// Layout: magic "CETR", version byte, then varint-encoded fields. All
// integers use unsigned varints; signed fields (Peer, Tag, which may be
// the -1 wildcards) use zig-zag varints. The format is self-describing
// enough for round-tripping but deliberately simple: traces are large,
// and decoding speed matters more than extensibility.

var binaryMagic = [4]byte{'C', 'E', 'T', 'R'}

const binaryVersion = 1

// ErrBadMagic is returned when decoding data that is not a binary trace.
var ErrBadMagic = errors.New("trace: bad magic, not a binary trace")

// WriteBinary encodes the trace to w in the compact binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Ops))); err != nil {
		return err
	}
	for _, ops := range t.Ops {
		if err := putUvarint(uint64(len(ops))); err != nil {
			return err
		}
		for _, op := range ops {
			if err := bw.WriteByte(byte(op.Kind)); err != nil {
				return err
			}
			if err := putVarint(int64(op.Peer)); err != nil {
				return err
			}
			if err := putVarint(int64(op.Tag)); err != nil {
				return err
			}
			if err := putVarint(int64(op.Req)); err != nil {
				return err
			}
			if err := putUvarint(uint64(op.Size)); err != nil {
				return err
			}
			if err := putUvarint(uint64(op.Dur)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary trace from r.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, ErrBadMagic
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary version %d", ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}
	nRanks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nRanks > 1<<26 {
		return nil, fmt.Errorf("trace: implausible rank count %d", nRanks)
	}
	initialRanks := nRanks
	if initialRanks > 1<<12 {
		// Same incremental-growth defense as per-rank ops: every rank
		// costs at least one input byte, so hostile headers hit EOF
		// before large allocations.
		initialRanks = 1 << 12
	}
	t := &Trace{Name: string(nameBuf), Ops: make([][]Op, initialRanks)}
	for rank := 0; uint64(rank) < nRanks; rank++ {
		if rank == len(t.Ops) {
			t.Ops = append(t.Ops, nil)
		}
		nOps, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if nOps == 0 {
			continue
		}
		if nOps > 1<<40 {
			return nil, fmt.Errorf("trace: implausible op count %d", nOps)
		}
		// Grow incrementally rather than trusting the declared count:
		// every op consumes at least six input bytes, so a hostile
		// header cannot force a huge allocation before hitting EOF.
		initial := nOps
		if initial > 1<<16 {
			initial = 1 << 16
		}
		ops := make([]Op, initial, initial)
		for i := 0; uint64(i) < nOps; i++ {
			if i == len(ops) {
				ops = append(ops, Op{})
			}
			kind, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			if OpKind(kind) >= numOpKinds {
				return nil, fmt.Errorf("trace: rank %d op %d: unknown kind %d", rank, i, kind)
			}
			peer, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			tag, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			req, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			size, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			dur, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			ops[i] = Op{
				Kind: OpKind(kind),
				Peer: int32(peer),
				Tag:  int32(tag),
				Req:  int32(req),
				Size: int64(size),
				Dur:  int64(dur),
			}
		}
		t.Ops[rank] = ops
	}
	return t, nil
}

// Text codec
//
// A human-readable, line-oriented format in the spirit of LogGOPSim's
// GOAL schedules:
//
//	trace <name>
//	ranks <n>
//	rank <r>
//	  calc <ns>
//	  send <peer> <bytes> <tag>
//	  isend <peer> <bytes> <tag> <req>
//	  irecv <peer> <bytes> <tag> <req>
//	  wait <req>
//	  waitall
//	  barrier
//	  allreduce <bytes>
//	  bcast <root> <bytes>
//	  ...
//
// Blank lines and '#' comments are ignored.

// WriteText encodes the trace to w in the text format.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "trace %s\n", t.Name)
	fmt.Fprintf(bw, "ranks %d\n", len(t.Ops))
	for r, ops := range t.Ops {
		fmt.Fprintf(bw, "rank %d\n", r)
		for _, op := range ops {
			switch op.Kind {
			case OpCalc:
				fmt.Fprintf(bw, "calc %d\n", op.Dur)
			case OpSend, OpRecv:
				fmt.Fprintf(bw, "%s %d %d %d\n", op.Kind, op.Peer, op.Size, op.Tag)
			case OpIsend, OpIrecv:
				fmt.Fprintf(bw, "%s %d %d %d %d\n", op.Kind, op.Peer, op.Size, op.Tag, op.Req)
			case OpWait:
				fmt.Fprintf(bw, "wait %d\n", op.Req)
			case OpWaitAll:
				fmt.Fprintf(bw, "waitall\n")
			case OpBarrier:
				fmt.Fprintf(bw, "barrier\n")
			case OpAllreduce, OpAllgather, OpAlltoall:
				fmt.Fprintf(bw, "%s %d\n", op.Kind, op.Size)
			case OpBcast, OpReduce, OpGather, OpScatter:
				fmt.Fprintf(bw, "%s %d %d\n", op.Kind, op.Peer, op.Size)
			default:
				return fmt.Errorf("trace: cannot encode kind %d", op.Kind)
			}
		}
	}
	return bw.Flush()
}

// ReadText decodes a text trace from r.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	t := &Trace{}
	cur := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		word := fields[0]
		argInt := func(i int) (int64, error) {
			if i >= len(fields) {
				return 0, fmt.Errorf("trace: line %d: %s missing argument %d", lineNo, word, i)
			}
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return 0, fmt.Errorf("trace: line %d: bad integer %q", lineNo, fields[i])
			}
			return v, nil
		}
		switch word {
		case "trace":
			if len(fields) > 1 {
				t.Name = fields[1]
			}
			continue
		case "ranks":
			n, err := argInt(1)
			if err != nil {
				return nil, err
			}
			if n <= 0 || n > 1<<26 {
				return nil, fmt.Errorf("trace: line %d: implausible rank count %d", lineNo, n)
			}
			t.Ops = make([][]Op, n)
			continue
		case "rank":
			n, err := argInt(1)
			if err != nil {
				return nil, err
			}
			if t.Ops == nil {
				return nil, fmt.Errorf("trace: line %d: rank before ranks header", lineNo)
			}
			if n < 0 || n >= int64(len(t.Ops)) {
				return nil, fmt.Errorf("trace: line %d: rank %d out of range", lineNo, n)
			}
			cur = int(n)
			continue
		}
		if cur < 0 {
			return nil, fmt.Errorf("trace: line %d: op before rank header", lineNo)
		}
		var op Op
		var err error
		switch word {
		case "calc":
			op.Kind = OpCalc
			op.Dur, err = argInt(1)
		case "send", "recv":
			if word == "send" {
				op.Kind = OpSend
			} else {
				op.Kind = OpRecv
			}
			var peer, size, tag int64
			if peer, err = argInt(1); err == nil {
				if size, err = argInt(2); err == nil {
					tag, err = argInt(3)
				}
			}
			op.Peer, op.Size, op.Tag = int32(peer), size, int32(tag)
		case "isend", "irecv":
			if word == "isend" {
				op.Kind = OpIsend
			} else {
				op.Kind = OpIrecv
			}
			var peer, size, tag, req int64
			if peer, err = argInt(1); err == nil {
				if size, err = argInt(2); err == nil {
					if tag, err = argInt(3); err == nil {
						req, err = argInt(4)
					}
				}
			}
			op.Peer, op.Size, op.Tag, op.Req = int32(peer), size, int32(tag), int32(req)
		case "wait":
			op.Kind = OpWait
			var req int64
			req, err = argInt(1)
			op.Req = int32(req)
		case "waitall":
			op.Kind = OpWaitAll
		case "barrier":
			op.Kind = OpBarrier
		case "allreduce", "allgather", "alltoall":
			switch word {
			case "allreduce":
				op.Kind = OpAllreduce
			case "allgather":
				op.Kind = OpAllgather
			default:
				op.Kind = OpAlltoall
			}
			op.Size, err = argInt(1)
		case "bcast", "reduce", "gather", "scatter":
			switch word {
			case "bcast":
				op.Kind = OpBcast
			case "reduce":
				op.Kind = OpReduce
			case "gather":
				op.Kind = OpGather
			default:
				op.Kind = OpScatter
			}
			var root int64
			if root, err = argInt(1); err == nil {
				op.Size, err = argInt(2)
			}
			op.Peer = int32(root)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, word)
		}
		if err != nil {
			return nil, err
		}
		t.Ops[cur] = append(t.Ops[cur], op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.Ops == nil {
		return nil, ErrEmptyTrace
	}
	return t, nil
}
