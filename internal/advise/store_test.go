package advise

import (
	"errors"
	"fmt"
	"testing"
)

func ev(tenant, node string, ts int64, addr uint64) Event {
	return Event{Tenant: tenant, Node: node, TimeNanos: ts, Addr: addr}
}

func TestStoreApplyAndLookup(t *testing.T) {
	s := NewStore(StoreConfig{})
	batch := []Event{
		ev("acme", "n1", 60e9, 0x1000),
		ev("acme", "n1", 120e9, 0x1000),
		ev("acme", "n2", 60e9, 0x2000),
	}
	if err := s.Apply(batch); err != nil {
		t.Fatal(err)
	}
	est, _, ok := s.Node("acme", "n1")
	if !ok || est.TotalEvents != 2 {
		t.Fatalf("n1: ok=%v est=%+v", ok, est)
	}
	if _, _, ok := s.Node("acme", "nope"); ok {
		t.Fatal("unknown node reported ok")
	}
	if _, _, ok := s.Node("ghost", "n1"); ok {
		t.Fatal("unknown tenant reported ok")
	}
	st := s.Stats()
	if st.Tenants != 1 || st.Nodes != 2 || st.Events != 3 || st.Batches != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestStoreNodeLimitAtomic: a batch that would blow the per-tenant node
// cap is rejected whole — even the events addressed to already-tracked
// nodes must not land.
func TestStoreNodeLimitAtomic(t *testing.T) {
	s := NewStore(StoreConfig{MaxNodesPerTenant: 2})
	if err := s.Apply([]Event{ev("acme", "n1", 60e9, 1)}); err != nil {
		t.Fatal(err)
	}
	err := s.Apply([]Event{
		ev("acme", "n1", 120e9, 2), // existing node: would be fine alone
		ev("acme", "n2", 60e9, 3),
		ev("acme", "n3", 60e9, 4), // third node: over the cap
	})
	if !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
	est, _, _ := s.Node("acme", "n1")
	if est.TotalEvents != 1 {
		t.Fatalf("rejected batch leaked into n1: %+v", est)
	}
	if st := s.Stats(); st.Nodes != 1 || st.Events != 1 {
		t.Fatalf("rejected batch changed stats: %+v", st)
	}
}

func TestStoreTenantLimitAtomic(t *testing.T) {
	s := NewStore(StoreConfig{MaxTenants: 1})
	if err := s.Apply([]Event{ev("acme", "n1", 60e9, 1)}); err != nil {
		t.Fatal(err)
	}
	err := s.Apply([]Event{
		ev("acme", "n1", 120e9, 2),
		ev("globex", "n1", 60e9, 3),
	})
	if !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("err = %v, want ErrTenantLimit", err)
	}
	if st := s.Stats(); st.Tenants != 1 || st.Events != 1 {
		t.Fatalf("rejected batch changed stats: %+v", st)
	}
}

// TestStoreBatchOrderIndependence: applying the same batches in any
// order converges to identical per-node estimates and classifications.
func TestStoreBatchOrderIndependence(t *testing.T) {
	var batches [][]Event
	for b := 0; b < 8; b++ {
		var batch []Event
		for i := 0; i < 20; i++ {
			n := fmt.Sprintf("n%d", (b+i)%3)
			batch = append(batch, ev("acme", n, int64(1+b*7919+i*613)*1e9, uint64(b*31+i)<<rowShift))
		}
		batches = append(batches, batch)
	}

	forward := NewStore(StoreConfig{})
	backward := NewStore(StoreConfig{})
	for i := range batches {
		if err := forward.Apply(batches[i]); err != nil {
			t.Fatal(err)
		}
		if err := backward.Apply(batches[len(batches)-1-i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"n0", "n1", "n2"} {
		ef, cf, okf := forward.Node("acme", n)
		eb, cb, okb := backward.Node("acme", n)
		if !okf || !okb {
			t.Fatalf("%s missing: %v %v", n, okf, okb)
		}
		if ef != eb {
			t.Fatalf("%s: batch order changed estimate:\n fwd %+v\n bwd %+v", n, ef, eb)
		}
		if cf != cb {
			t.Fatalf("%s: batch order changed classification: %+v vs %+v", n, cf, cb)
		}
	}
}
