package advise

import (
	"errors"
	"fmt"
	"sync"
)

// Admission sentinels, matched with errors.Is at the HTTP layer.
var (
	// ErrTenantLimit reports that admitting a batch would create more
	// tenants than the store is configured to hold.
	ErrTenantLimit = errors.New("advise: tenant limit reached")
	// ErrNodeLimit reports that admitting a batch would track more
	// nodes for a tenant than its cap.
	ErrNodeLimit = errors.New("advise: per-tenant node limit reached")
)

// StoreConfig bounds the per-tenant estimator state.
type StoreConfig struct {
	// Estimator sizes every node's MTBCE estimator.
	Estimator EstimatorConfig
	// MaxTenants bounds distinct tenants (default 1024).
	MaxTenants int
	// MaxNodesPerTenant bounds tracked nodes per tenant (default 4096).
	MaxNodesPerTenant int
	// MinSamples is the classification floor (default
	// DefaultMinSamples).
	MinSamples int
}

func (c StoreConfig) withDefaults() StoreConfig {
	c.Estimator = c.Estimator.withDefaults()
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	if c.MaxNodesPerTenant <= 0 {
		c.MaxNodesPerTenant = 4096
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	return c
}

// nodeState is one (tenant, node)'s online state.
type nodeState struct {
	est *Estimator
	fp  Footprint
}

// Store holds the per-(tenant, node) streaming state. All methods are
// safe for concurrent use; batch application is atomic (a batch either
// updates every event's node or none), which together with the
// estimator's order-independent merges gives the service its
// determinism and idempotent-retry discipline.
type Store struct {
	cfg StoreConfig

	mu      sync.Mutex
	tenants map[string]map[string]*nodeState
	nodes   int
	events  uint64
	batches uint64
}

// NewStore returns an empty store.
func NewStore(cfg StoreConfig) *Store {
	return &Store{cfg: cfg.withDefaults(), tenants: map[string]map[string]*nodeState{}}
}

// Apply ingests one validated batch atomically. Admission is checked
// for the whole batch before any event lands: a rejected batch leaves
// the store untouched, so the caller can retry or drop it whole.
func (s *Store) Apply(events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Admission pass: count the tenants and nodes this batch would add.
	newTenants := map[string]map[string]bool{}
	newNodes := 0
	for i := range events {
		ev := &events[i]
		if nodes, ok := s.tenants[ev.Tenant]; ok {
			if _, ok := nodes[ev.Node]; ok {
				continue
			}
		}
		added := newTenants[ev.Tenant]
		if added == nil {
			added = map[string]bool{}
			newTenants[ev.Tenant] = added
		}
		if !added[ev.Node] {
			added[ev.Node] = true
			newNodes++
		}
	}
	tenantCount := len(s.tenants)
	for t, added := range newTenants {
		if _, ok := s.tenants[t]; !ok {
			tenantCount++
		}
		existing := len(s.tenants[t])
		if existing+len(added) > s.cfg.MaxNodesPerTenant {
			return fmt.Errorf("%w: tenant %q would track %d nodes (cap %d)",
				ErrNodeLimit, t, existing+len(added), s.cfg.MaxNodesPerTenant)
		}
	}
	if tenantCount > s.cfg.MaxTenants {
		return fmt.Errorf("%w: batch would raise tenant count to %d (cap %d)",
			ErrTenantLimit, tenantCount, s.cfg.MaxTenants)
	}

	// Apply pass: cannot fail past this point.
	touched := map[*nodeState]bool{}
	for i := range events {
		ev := &events[i]
		nodes := s.tenants[ev.Tenant]
		if nodes == nil {
			nodes = map[string]*nodeState{}
			s.tenants[ev.Tenant] = nodes
		}
		ns := nodes[ev.Node]
		if ns == nil {
			ns = &nodeState{est: NewEstimator(s.cfg.Estimator)}
			nodes[ev.Node] = ns
			s.nodes++
		}
		ns.est.Add(ev.TimeNanos)
		ns.fp.Add(ev.Addr, ev.Bank)
		touched[ns] = true
	}
	for ns := range touched {
		ns.est.Trim()
	}
	s.events += uint64(len(events))
	s.batches++
	return nil
}

// Node returns the estimate and classification for one tracked node.
func (s *Store) Node(tenant, node string) (Estimate, Classification, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns := s.tenants[tenant][node]
	if ns == nil {
		return Estimate{}, Classification{}, false
	}
	return ns.est.Estimate(), ns.fp.Classify(s.cfg.MinSamples), true
}

// StoreStats is the store's gauge snapshot.
type StoreStats struct {
	Tenants int    `json:"tenants"`
	Nodes   int    `json:"nodes"`
	Events  uint64 `json:"events"`
	Batches uint64 `json:"batches"`
}

// Stats snapshots the store gauges.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Tenants: len(s.tenants), Nodes: s.nodes, Events: s.events, Batches: s.batches}
}
