package advise

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faultinject"
)

// maxIngestBytes bounds an ingest body (NDJSON batches are compact;
// 8 MiB holds well over the event cap).
const maxIngestBytes = 8 << 20

// CacheHeader reports how a recommend response was produced: "hit",
// "miss" or "bypass". It is a header, not a body field, so response
// bodies stay a pure function of estimator state (the determinism
// contract compares bodies byte-for-byte).
const CacheHeader = "X-Advise-Cache"

// IngestResult is the ingest success body.
type IngestResult struct {
	// Accepted is the number of events applied.
	Accepted int `json:"accepted"`
	// Nodes is the number of distinct (tenant, node) streams touched.
	Nodes int `json:"nodes"`
}

// HandleIngest serves POST /v1/advise/ingest: a batch of NDJSON Event
// lines. The batch is parsed and validated whole, then passed through
// the advise.ingest fault site, then applied atomically — so a failed
// request (fault, limit, bad line) leaves no partial state and a
// straight retry cannot double-count.
func (s *Service) HandleIngest(w http.ResponseWriter, r *http.Request) {
	events, err := s.decodeBatch(r)
	if err != nil {
		s.reject()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(events) == 0 {
		s.reject()
		writeError(w, http.StatusBadRequest, "advise: empty batch")
		return
	}
	if err := faultinject.Fire(r.Context(), faultinject.SiteAdviseIngest); err != nil {
		s.reject()
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := s.store.Apply(events); err != nil {
		s.reject()
		status := http.StatusInternalServerError
		if errors.Is(err, ErrTenantLimit) || errors.Is(err, ErrNodeLimit) {
			status = http.StatusTooManyRequests
			// Same backoff contract as the daemon's shed 503 and queue
			// 429: every throttling response carries Retry-After so
			// clients back off uniformly instead of special-casing the
			// advisor (docs/ADVISOR.md).
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, "%v", err)
		return
	}
	seen := map[string]bool{}
	for i := range events {
		seen[events[i].Tenant+"\x00"+events[i].Node] = true
	}
	writeJSON(w, http.StatusOK, IngestResult{Accepted: len(events), Nodes: len(seen)})
}

// decodeBatch parses the NDJSON body strictly.
func (s *Service) decodeBatch(r *http.Request) ([]Event, error) {
	sc := bufio.NewScanner(http.MaxBytesReader(nil, r.Body, maxIngestBytes))
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		if len(events) >= s.cfg.MaxBatchEvents {
			return nil, fmt.Errorf("advise: batch exceeds %d events", s.cfg.MaxBatchEvents)
		}
		var ev Event
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("advise: line %d: %v", line, err)
		}
		if err := ev.Validate(); err != nil {
			return nil, fmt.Errorf("advise: line %d: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("advise: read batch: %v", err)
	}
	return events, nil
}

// recommendParams are the recognized recommend query parameters.
var recommendParams = map[string]bool{
	"tenant": true, "node": true, "workload": true, "nodes": true,
	"budget": true, "gib": true, "perevent_ns": true,
	"checkpoint_ns": true, "restart_ns": true,
}

// HandleRecommend serves GET /v1/advise/recommend.
//
// Required: tenant, node. Optional scenario overrides: workload,
// nodes, budget (pct), gib, perevent_ns, checkpoint_ns, restart_ns.
func (s *Service) HandleRecommend(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var unknown []string
	for k := range q {
		if !recommendParams[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		writeError(w, http.StatusBadRequest, "advise: unknown query parameters %v", unknown)
		return
	}
	tenant, node := q.Get("tenant"), q.Get("node")
	if err := validName("tenant", tenant); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := validName("node", node); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	in := Inputs{
		Workload:   s.cfg.Defaults.Workload,
		Nodes:      s.cfg.Defaults.Nodes,
		BudgetPct:  s.cfg.Defaults.BudgetPct,
		GiBPerNode: s.cfg.Defaults.GiBPerNode,
	}
	if v := q.Get("workload"); v != "" {
		in.Workload = v
	}
	var err error
	if in.Nodes, err = intParam(q, "nodes", in.Nodes); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if in.BudgetPct, err = floatParam(q, "budget", in.BudgetPct); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if in.GiBPerNode, err = floatParam(q, "gib", in.GiBPerNode); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if in.PerEventNanos, err = int64Param(q, "perevent_ns", 0); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if in.CheckpointNanos, err = int64Param(q, "checkpoint_ns", 0); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if in.RestartNanos, err = int64Param(q, "restart_ns", 0); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	rec, outcome, err := s.Recommend(tenant, node, in)
	switch {
	case errors.Is(err, ErrUnknownNode):
		writeError(w, http.StatusNotFound, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set(CacheHeader, outcome)
	writeJSON(w, http.StatusOK, rec)
}

// ErrUnknownNode reports a recommend query for a (tenant, node) the
// store has never seen an event for.
var ErrUnknownNode = errors.New("advise: unknown tenant/node")

// Recommend answers a policy query for one tracked node: look up the
// node's estimator state, quantize it, evaluate (or fetch) the cached
// policy answer, and attach the exact estimate. The returned outcome
// is "hit", "miss" or "bypass".
//
// The cached layer is a pure function of the quantized state and the
// scenario parameters, so cache hits, misses and bypasses produce
// byte-identical bodies — the same bit-identical degradation contract
// the baseline cache's circuit breaker provides for simulations.
func (s *Service) Recommend(tenant, node string, in Inputs) (*Recommendation, string, error) {
	est, cls, ok := s.store.Node(tenant, node)
	if !ok {
		return nil, "", fmt.Errorf("%w: %s/%s has no ingested events", ErrUnknownNode, tenant, node)
	}
	quant := QuantizeMTBCE(est.MTBCENanos)
	in.ObservedMTBCENanos = quant
	in.FaultKnown = cls.Known
	in.Fault = cls.Kind
	in.FaultConfidence = cls.Confidence

	key := cacheKey(in)
	outcome := "bypass"
	rec, hit := s.cacheGet(key)
	if hit {
		outcome = "hit"
	} else {
		var err error
		rec, err = Advise(in)
		if err != nil {
			return nil, "", err
		}
		if s.cfg.CacheEntries >= 0 {
			outcome = "miss"
			s.cachePut(key, rec)
		}
	}

	// Shallow-copy the cached evaluation before attaching the exact,
	// node-specific estimate; the cached entry stays shared and
	// immutable.
	out := *rec
	kind := "unknown"
	if cls.Known {
		kind = cls.Kind.String()
	}
	out.Estimate = &NodeEstimate{
		Tenant: tenant, Node: node,
		Estimate:            est,
		MTBCEQuantizedNanos: quant,
		FaultKind:           kind,
		FaultConfidence:     cls.Confidence,
	}
	return &out, outcome, nil
}

// cacheKey canonicalizes the policy-relevant inputs. Fault confidence
// is folded to 3 decimals so it cannot fragment the cache.
func cacheKey(in Inputs) string {
	return fmt.Sprintf("%s|%d|%g|%g|%d|%d|%t|%d|%.3f|%d|%d",
		in.Workload, in.Nodes, in.BudgetPct, in.GiBPerNode, in.PerEventNanos,
		in.ObservedMTBCENanos, in.FaultKnown, in.Fault, in.FaultConfidence,
		in.CheckpointNanos, in.RestartNanos)
}

func intParam(q map[string][]string, key string, def int) (int, error) {
	vs := q[key]
	if len(vs) == 0 || vs[0] == "" {
		return def, nil
	}
	v, err := strconv.Atoi(vs[0])
	if err != nil {
		return 0, fmt.Errorf("advise: %s: %v", key, err)
	}
	return v, nil
}

func int64Param(q map[string][]string, key string, def int64) (int64, error) {
	vs := q[key]
	if len(vs) == 0 || vs[0] == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(vs[0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("advise: %s: %v", key, err)
	}
	return v, nil
}

func floatParam(q map[string][]string, key string, def float64) (float64, error) {
	vs := q[key]
	if len(vs) == 0 || vs[0] == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(vs[0], 64)
	if err != nil {
		return 0, fmt.Errorf("advise: %s: %v", key, err)
	}
	return v, nil
}

// writeJSON mirrors internal/server's encoder settings so advisor
// responses render like every other endpoint.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // header already sent; nothing useful to do on error
}

// errorBody matches internal/server's error payload, echoing the
// request id the middleware stamped on the response headers.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{
		Error:     fmt.Sprintf(format, args...),
		RequestID: w.Header().Get("X-Request-Id"),
	})
}
