package advise

import (
	"math"
	"math/rand"
	"testing"
)

func TestEstimatorEmpty(t *testing.T) {
	e := NewEstimator(EstimatorConfig{})
	est := e.Estimate()
	if est.TotalEvents != 0 || est.MTBCENanos != 0 || est.CEPerYear != 0 {
		t.Fatalf("empty estimator produced %+v", est)
	}
}

func TestEstimatorSingleEvent(t *testing.T) {
	cfg := EstimatorConfig{BucketNanos: 60e9}
	e := NewEstimator(cfg)
	e.Add(90e9)
	est := e.Estimate()
	if est.TotalEvents != 1 || est.WindowEvents != 1 {
		t.Fatalf("counts: %+v", est)
	}
	if est.FirstNanos != 90e9 || est.LastNanos != 90e9 {
		t.Fatalf("bounds: %+v", est)
	}
	// One event, one bucket of observation: MTBCE = bucket width.
	if est.MTBCENanos != 60e9 {
		t.Fatalf("MTBCE = %d, want bucket width 60e9", est.MTBCENanos)
	}
}

func TestEstimatorUniformRate(t *testing.T) {
	// Events every 10s for an hour with decay effectively off: the MLE
	// must recover MTBCE ~ 10s.
	cfg := EstimatorConfig{BucketNanos: 60e9, HalfLifeNanos: 1e18}
	e := NewEstimator(cfg)
	for ts := int64(10e9); ts <= 3600e9; ts += 10e9 {
		e.Add(ts)
	}
	e.Trim()
	est := e.Estimate()
	got := float64(est.MTBCENanos)
	if math.Abs(got-10e9)/10e9 > 0.02 {
		t.Fatalf("MTBCE = %v ns, want ~10e9", got)
	}
	wantYr := 365.25 * 24 * 3600 / 10
	if math.Abs(est.CEPerYear-wantYr)/wantYr > 0.02 {
		t.Fatalf("CEPerYear = %v, want ~%v", est.CEPerYear, wantYr)
	}
}

func TestEstimatorDecayFavorsRecent(t *testing.T) {
	// Same 200 events; one stream had its burst long ago, the other just
	// now. Decay must weight the recent burst harder: lower MTBCE.
	cfg := EstimatorConfig{BucketNanos: 60e9, WindowBuckets: 1440, HalfLifeNanos: 3600e9}
	old := NewEstimator(cfg)
	recent := NewEstimator(cfg)
	base := int64(1e15)
	span := int64(12) * 3600e9 // 12h observed in both streams
	for i := int64(0); i < 200; i++ {
		old.Add(base + i*60e9/4)           // burst in the first ~50min
		recent.Add(base + span - i*60e9/4) // burst in the last ~50min
	}
	old.Add(base + span) // stretch both observation spans to 12h
	recent.Add(base)
	old.Trim()
	recent.Trim()
	om, rm := old.Estimate().MTBCENanos, recent.Estimate().MTBCENanos
	if rm >= om {
		t.Fatalf("recent-burst MTBCE %d not below old-burst MTBCE %d", rm, om)
	}
}

func TestEstimatorTrimDropsOldBuckets(t *testing.T) {
	cfg := EstimatorConfig{BucketNanos: 60e9, WindowBuckets: 10}
	e := NewEstimator(cfg)
	e.Add(60e9)       // bucket 1
	e.Add(100 * 60e9) // bucket 100; cutoff becomes 91
	e.Trim()
	est := e.Estimate()
	if est.TotalEvents != 2 {
		t.Fatalf("TotalEvents = %d, want 2 (trim must not forget history)", est.TotalEvents)
	}
	if est.WindowEvents != 1 {
		t.Fatalf("WindowEvents = %d, want 1 after trim", est.WindowEvents)
	}
	if est.FirstNanos != 60e9 || est.LastNanos != 100*60e9 {
		t.Fatalf("bounds survive trim: %+v", est)
	}
}

func TestEstimatorTrimIdempotent(t *testing.T) {
	cfg := EstimatorConfig{BucketNanos: 60e9, WindowBuckets: 5}
	a, b := NewEstimator(cfg), NewEstimator(cfg)
	for _, ts := range []int64{60e9, 120e9, 400 * 60e9, 401 * 60e9} {
		a.Add(ts)
		b.Add(ts)
	}
	a.Trim()
	b.Trim()
	b.Trim()
	b.Trim()
	if a.Estimate() != b.Estimate() {
		t.Fatalf("repeated trims changed the estimate: %+v vs %+v", a.Estimate(), b.Estimate())
	}
}

// TestEstimatorOrderIndependence is the core determinism property: the
// same multiset of timestamps, inserted in any order with trims
// interleaved anywhere, must yield a bit-identical estimate.
func TestEstimatorOrderIndependence(t *testing.T) {
	cfg := EstimatorConfig{BucketNanos: 60e9, WindowBuckets: 100, HalfLifeNanos: 3600e9}
	rnd := rand.New(rand.NewSource(7))
	ts := make([]int64, 500)
	for i := range ts {
		ts[i] = 1 + rnd.Int63n(200*60e9) // spans beyond the window to exercise trim
	}
	ref := NewEstimator(cfg)
	for _, v := range ts {
		ref.Add(v)
	}
	ref.Trim()
	want := ref.Estimate()

	for trial := 0; trial < 20; trial++ {
		perm := rnd.Perm(len(ts))
		e := NewEstimator(cfg)
		for i, pi := range perm {
			e.Add(ts[pi])
			if i%17 == 0 {
				e.Trim() // trims anywhere must not change the converged state
			}
		}
		e.Trim()
		if got := e.Estimate(); got != want {
			t.Fatalf("trial %d: permuted insertion changed estimate:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

func TestQuantizeMTBCE(t *testing.T) {
	if QuantizeMTBCE(0) != 0 || QuantizeMTBCE(-5) != 0 {
		t.Fatal("non-positive inputs must quantize to 0")
	}
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := 1 + rnd.Int63n(int64(1e15))
		q := QuantizeMTBCE(v)
		if q <= 0 {
			t.Fatalf("QuantizeMTBCE(%d) = %d", v, q)
		}
		if rel := math.Abs(float64(q-v)) / float64(v); rel > 0.045 {
			t.Fatalf("QuantizeMTBCE(%d) = %d, relative error %v > 4.5%%", v, q, rel)
		}
		if qq := QuantizeMTBCE(q); qq != q {
			t.Fatalf("quantization not idempotent: %d -> %d -> %d", v, q, qq)
		}
	}
	// Nearby values share a representative — that's what makes the
	// recommendation cache effective.
	if QuantizeMTBCE(1000_000_000) != QuantizeMTBCE(1000_100_000) {
		t.Fatal("values 0.01% apart landed in different quanta")
	}
}
