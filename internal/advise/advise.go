// Package advise is the online mitigation advisor: it closes the loop
// from the paper's offline analysis ("pick a logging mode and keep
// MTBCE(node) above a budget-derived floor") to a streaming service
// that watches per-node correctable-error streams and answers policy
// questions continuously.
//
// Three layers, mounted on the cesimd HTTP server (docs/ADVISOR.md):
//
//	ingest     POST /v1/advise/ingest — batched NDJSON CE events per
//	           (tenant, node), validated whole, admitted through the
//	           server's shed watermark, applied atomically;
//	estimation per-(tenant, node) online state: a decayed-window MTBCE
//	           estimator (Estimator) and a fault-mode classifier over
//	           the address footprint (Footprint), both deterministic
//	           and order-independent under batch merges;
//	policy     GET /v1/advise/recommend — composes predict.Budget
//	           (minimum-MTBCE floor per logging mode), retire
//	           (retire-worthiness of the classified fault mode) and
//	           due (Daly checkpoint retune from the DUE-rate
//	           estimate), answered from a bounded cache keyed by the
//	           quantized estimator state.
//
// Determinism contract: ingesting the same event batches in any batch
// order yields byte-identical recommend responses. The cache cannot
// break this because policy evaluation is a pure function of the
// quantized state and cached entries are exactly that function's
// value; a disabled or bypassed cache recomputes the identical bytes.
package advise

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
)

// Event is one correctable-error observation on the wire: a single
// NDJSON line of the ingest batch body.
type Event struct {
	// Tenant and Node identify the reporting stream.
	Tenant string `json:"tenant"`
	Node   string `json:"node"`
	// TimeNanos is the event timestamp (Unix nanoseconds, > 0).
	TimeNanos int64 `json:"ts_ns"`
	// Addr is the corrected physical address.
	Addr uint64 `json:"addr"`
	// Bank is the DRAM bank the address decodes to (optional).
	Bank int `json:"bank,omitempty"`
	// Syndrome is the ECC syndrome (optional, logged through only).
	Syndrome string `json:"synd,omitempty"`
}

// maxNameLen bounds tenant and node identifiers.
const maxNameLen = 64

// Validate reports schema errors in one event.
func (ev Event) Validate() error {
	if err := validName("tenant", ev.Tenant); err != nil {
		return err
	}
	if err := validName("node", ev.Node); err != nil {
		return err
	}
	if ev.TimeNanos <= 0 {
		return fmt.Errorf("advise: ts_ns must be positive, got %d", ev.TimeNanos)
	}
	if ev.Bank < 0 {
		return fmt.Errorf("advise: bank must be non-negative, got %d", ev.Bank)
	}
	if len(ev.Syndrome) > maxNameLen {
		return fmt.Errorf("advise: synd longer than %d bytes", maxNameLen)
	}
	return nil
}

func validName(field, v string) error {
	if v == "" {
		return fmt.Errorf("advise: %s is required", field)
	}
	if len(v) > maxNameLen {
		return fmt.Errorf("advise: %s longer than %d bytes", field, maxNameLen)
	}
	if strings.ContainsAny(v, " \t\r\n\"") {
		return fmt.Errorf("advise: %s contains whitespace or quotes", field)
	}
	return nil
}

// Config wires a Service.
type Config struct {
	// Store bounds the estimator state.
	Store StoreConfig
	// MaxBatchEvents bounds one ingest batch (default 10000).
	MaxBatchEvents int
	// CacheEntries bounds the recommendation cache; 0 selects the
	// default (1024), negative disables caching (every recommend
	// recomputes — bit-identical, just slower; the degraded mode the
	// breaker-style bypass falls back to).
	CacheEntries int
	// Defaults fills scenario parameters the recommend query omits.
	Defaults ScenarioDefaults
}

// ScenarioDefaults are the recommend endpoint's fallback scenario.
type ScenarioDefaults struct {
	Workload   string  `json:"workload"`
	Nodes      int     `json:"nodes"`
	BudgetPct  float64 `json:"budget_pct"`
	GiBPerNode float64 `json:"gib_per_node"`
}

func (c Config) withDefaults() Config {
	c.Store = c.Store.withDefaults()
	if c.MaxBatchEvents <= 0 {
		c.MaxBatchEvents = 10000
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.Defaults.Workload == "" {
		c.Defaults.Workload = "lulesh"
	}
	if c.Defaults.Nodes <= 0 {
		c.Defaults.Nodes = 16384
	}
	if c.Defaults.BudgetPct <= 0 {
		c.Defaults.BudgetPct = 10
	}
	if c.Defaults.GiBPerNode <= 0 {
		c.Defaults.GiBPerNode = 700
	}
	return c
}

// Service is the advisor subsystem: store + recommendation cache.
// Mount its handlers through internal/server (Config.Advisor).
type Service struct {
	cfg   Config
	store *Store

	mu       sync.Mutex
	cache    map[string]*list.Element
	order    *list.List // LRU: front = most recent
	hits     uint64
	misses   uint64
	bypasses uint64
	rejects  uint64
}

// cacheEntry is one cached policy evaluation.
type cacheEntry struct {
	key string
	rec *Recommendation
}

// NewService builds the advisor.
func NewService(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:   cfg,
		store: NewStore(cfg.Store),
		cache: map[string]*list.Element{},
		order: list.New(),
	}
}

// Store exposes the estimator state (tests and cluster tooling).
func (s *Service) Store() *Store { return s.store }

// cacheGet returns a cached policy evaluation. ok is only ever true
// when caching is enabled.
func (s *Service) cacheGet(key string) (*Recommendation, bool) {
	if s.cfg.CacheEntries < 0 {
		s.mu.Lock()
		s.bypasses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.cache[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).rec, true
}

// cachePut stores a policy evaluation, evicting the least recently
// used entry past the bound.
func (s *Service) cachePut(key string, rec *Recommendation) {
	if s.cfg.CacheEntries < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.cache[key]; ok {
		el.Value.(*cacheEntry).rec = rec
		s.order.MoveToFront(el)
		return
	}
	s.cache[key] = s.order.PushFront(&cacheEntry{key: key, rec: rec})
	for len(s.cache) > s.cfg.CacheEntries {
		el := s.order.Back()
		s.order.Remove(el)
		delete(s.cache, el.Value.(*cacheEntry).key)
	}
}

// Stats is the advisor's /metrics section.
type Stats struct {
	Store StoreStats `json:"store"`
	// CacheEntries is the live recommendation-cache size.
	CacheEntries int `json:"cache_entries"`
	// RecommendHits/Misses/Bypasses count recommendation-cache
	// outcomes; bypasses are recomputations with caching disabled.
	RecommendHits     uint64 `json:"recommend_hits"`
	RecommendMisses   uint64 `json:"recommend_misses"`
	RecommendBypasses uint64 `json:"recommend_bypasses"`
	// IngestRejects counts batches rejected by validation, limits or
	// injected faults.
	IngestRejects uint64 `json:"ingest_rejects"`
}

// Stats snapshots the advisor counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		CacheEntries:      len(s.cache),
		RecommendHits:     s.hits,
		RecommendMisses:   s.misses,
		RecommendBypasses: s.bypasses,
		IngestRejects:     s.rejects,
	}
	s.mu.Unlock()
	st.Store = s.store.Stats()
	return st
}

func (s *Service) reject() {
	s.mu.Lock()
	s.rejects++
	s.mu.Unlock()
}
