package advise

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/due"
	"repro/internal/predict"
	"repro/internal/retire"
	"repro/internal/systems"
	"repro/internal/tracegen"
)

// Policy knobs with paper-grounded defaults.
const (
	// DefaultCEtoDUERatio is the paper's §I observation that
	// correctable error rates run ~20x higher than uncorrectable
	// ones; it converts an MTBCE estimate into a DUE-class node MTBF
	// for the checkpoint-interval retune.
	DefaultCEtoDUERatio = 20
	// DefaultRetirePageBudget mirrors retire.Policy's kernel default:
	// at most 64 pages may be taken offline per node.
	DefaultRetirePageBudget = 64
	// DefaultRetireThreshold is the suggested CEs-on-page trigger: a
	// few repeats confirm a persistent fault without retiring pages
	// for one-off transients.
	DefaultRetireThreshold = 4
	// DefaultCheckpointNanos and DefaultRestartNanos are the Daly-model
	// costs assumed when the caller does not supply its own: a 4-minute
	// checkpoint write and a 10-minute restore, typical of the
	// petascale systems in Table II.
	DefaultCheckpointNanos = int64(240) * 1e9
	DefaultRestartNanos    = int64(600) * 1e9
	// RecommendHeadroom is the safety margin between a logging mode's
	// minimum-MTBCE floor and the observed MTBCE before the mode is
	// recommended: 2x keeps an estimator wobble (or a modest rate
	// regression) from flapping the verdict.
	RecommendHeadroom = 2.0
)

// Inputs describe one advisory scenario: the deployment parameters
// plus, when available, the node's observed CE behaviour. cmd/advisor
// fills it from flags; the /v1/advise/recommend endpoint fills it from
// query parameters and the node's streamed estimator state.
type Inputs struct {
	// Workload names the synchronization cadence to assume.
	Workload string
	// Nodes is the machine size.
	Nodes int
	// BudgetPct is the acceptable slowdown in percent.
	BudgetPct float64
	// GiBPerNode converts CE rates to per-GiB terms.
	GiBPerNode float64
	// PerEventNanos, when positive, replaces the three catalog logging
	// modes with a single explicit per-CE cost.
	PerEventNanos int64
	// ObservedMTBCENanos is the node's estimated MTBCE; 0 means
	// unknown (the mode floors are still reported, but no mode is
	// recommended and the retirement/checkpoint sections stay empty).
	ObservedMTBCENanos int64
	// FaultKnown marks Fault as a classified verdict.
	FaultKnown bool
	// Fault is the classified fault mode.
	Fault retire.FaultKind
	// FaultConfidence is the classifier's confidence in (0, 1].
	FaultConfidence float64
	// CheckpointNanos and RestartNanos parameterize the Daly retune;
	// zero selects the defaults above.
	CheckpointNanos int64
	RestartNanos    int64
	// CEtoDUERatio converts MTBCE to DUE-class MTBF; zero selects the
	// default.
	CEtoDUERatio float64
	// RetirePageBudget is the per-node page-offlining budget; zero
	// selects the default.
	RetirePageBudget int
}

// Validate reports errors in the scenario parameters.
func (in Inputs) Validate() error {
	if in.Workload == "" {
		return fmt.Errorf("advise: workload is required")
	}
	if _, err := tracegen.Lookup(in.Workload); err != nil {
		return fmt.Errorf("advise: unknown workload %q", in.Workload)
	}
	if in.Nodes < 1 {
		return fmt.Errorf("advise: nodes must be positive, got %d", in.Nodes)
	}
	if in.BudgetPct <= 0 {
		return fmt.Errorf("advise: budget must be positive, got %v", in.BudgetPct)
	}
	if in.GiBPerNode <= 0 {
		return fmt.Errorf("advise: GiB per node must be positive, got %v", in.GiBPerNode)
	}
	if in.PerEventNanos < 0 || in.ObservedMTBCENanos < 0 ||
		in.CheckpointNanos < 0 || in.RestartNanos < 0 {
		return fmt.Errorf("advise: negative time parameter")
	}
	if in.CEtoDUERatio < 0 || in.RetirePageBudget < 0 || in.FaultConfidence < 0 {
		return fmt.Errorf("advise: negative policy parameter")
	}
	return nil
}

func (in Inputs) withDefaults() Inputs {
	if in.CheckpointNanos == 0 {
		in.CheckpointNanos = DefaultCheckpointNanos
	}
	if in.RestartNanos == 0 {
		in.RestartNanos = DefaultRestartNanos
	}
	if in.CEtoDUERatio == 0 {
		in.CEtoDUERatio = DefaultCEtoDUERatio
	}
	if in.RetirePageBudget == 0 {
		in.RetirePageBudget = DefaultRetirePageBudget
	}
	return in
}

// ModeAssessment is one logging mode's budget-derived floor, and —
// when an observed MTBCE is available — whether the node meets it.
type ModeAssessment struct {
	Mode          string `json:"mode"`
	PerEventNanos int64  `json:"per_event_ns"`
	// Feasible is false when predict reports ErrNoFeasibleMTBCE: no
	// CE rate, however low, keeps this mode inside the budget.
	Feasible bool `json:"feasible"`
	// MinMTBCENanos is the budget floor (0 when infeasible).
	MinMTBCENanos    int64   `json:"min_mtbce_ns,omitempty"`
	MaxCEPerNodeYear float64 `json:"max_ce_per_node_year,omitempty"`
	MaxCEPerGiBYear  float64 `json:"max_ce_per_gib_year,omitempty"`
	VsCielo          float64 `json:"vs_cielo,omitempty"`
	// Satisfied reports observed MTBCE >= floor * RecommendHeadroom;
	// omitted when no observation is available.
	Satisfied *bool `json:"satisfied,omitempty"`
}

// RetirementAdvice is the page-offlining verdict for the classified
// fault mode.
type RetirementAdvice struct {
	// Worth is true when the fault's page footprint fits the budget.
	Worth bool `json:"worth"`
	// FaultKind is the classified mode ("" when unclassified).
	FaultKind string `json:"fault_kind,omitempty"`
	// Confidence echoes the classifier confidence.
	Confidence float64 `json:"confidence,omitempty"`
	// FootprintPages is the mode's page footprint.
	FootprintPages int `json:"footprint_pages,omitempty"`
	// PageBudget is the per-node offlining budget assumed.
	PageBudget int `json:"page_budget"`
	// SuggestedThreshold is the CEs-on-page retirement trigger to
	// configure when Worth.
	SuggestedThreshold int `json:"suggested_threshold,omitempty"`
	// Reason explains the verdict.
	Reason string `json:"reason"`
}

// CheckpointAdvice is the Daly checkpoint-interval retune derived from
// the DUE-rate estimate.
type CheckpointAdvice struct {
	// NodeMTBFNanos is the DUE-class per-node MTBF inferred from the
	// observed MTBCE via the CE:DUE ratio.
	NodeMTBFNanos int64 `json:"node_mtbf_ns"`
	// SystemMTBFNanos is NodeMTBFNanos / Nodes.
	SystemMTBFNanos int64 `json:"system_mtbf_ns"`
	// CheckpointNanos and RestartNanos echo the assumed costs.
	CheckpointNanos int64 `json:"checkpoint_ns"`
	RestartNanos    int64 `json:"restart_ns"`
	// YoungNanos and DalyNanos are the optimal intervals.
	YoungNanos int64 `json:"young_interval_ns"`
	DalyNanos  int64 `json:"daly_interval_ns"`
	// OverheadPct is the expected runtime inflation at the Daly
	// interval under the exponential model.
	OverheadPct float64 `json:"overhead_pct"`
}

// Recommendation is the advisor's machine-readable answer, shared
// verbatim between cmd/advisor -json and GET /v1/advise/recommend.
type Recommendation struct {
	// Scenario parameters the answer was computed for.
	Workload   string  `json:"workload"`
	Nodes      int     `json:"nodes"`
	BudgetPct  float64 `json:"budget_pct"`
	GiBPerNode float64 `json:"gib_per_node"`
	// SyncIntervalNanos is the workload's synchronization cadence.
	SyncIntervalNanos int64 `json:"sync_interval_ns"`
	// ObservedMTBCENanos is the MTBCE the policy was evaluated at (the
	// quantized estimate on the service path); 0 when unknown.
	ObservedMTBCENanos int64 `json:"observed_mtbce_ns,omitempty"`
	// Modes lists every assessed logging mode in catalog order.
	Modes []ModeAssessment `json:"modes"`
	// RecommendedMode is the most detailed logging mode whose floor
	// clears the observed MTBCE with RecommendHeadroom; "" when no
	// observation is available, "hardware-only" when nothing richer
	// fits.
	RecommendedMode string `json:"recommended_mode,omitempty"`
	// Retirement and Checkpoint are present when an observation (and,
	// for retirement, a classification attempt) informed them.
	Retirement *RetirementAdvice `json:"retirement,omitempty"`
	Checkpoint *CheckpointAdvice `json:"checkpoint,omitempty"`
	// Estimate carries the node's exact estimator state on the
	// service path (nil from the offline CLI). It is attached after
	// policy evaluation and never feeds the recommendation cache.
	Estimate *NodeEstimate `json:"estimate,omitempty"`
}

// NodeEstimate is the per-node estimator state on the wire.
type NodeEstimate struct {
	Tenant string `json:"tenant"`
	Node   string `json:"node"`
	Estimate
	// MTBCEQuantizedNanos is the cache-quantum representative the
	// policy answer was computed at.
	MTBCEQuantizedNanos int64 `json:"mtbce_quantized_ns,omitempty"`
	// FaultKind and FaultConfidence report the classifier verdict
	// ("unknown" below the sample floor).
	FaultKind       string  `json:"fault_kind"`
	FaultConfidence float64 `json:"fault_confidence,omitempty"`
}

// Advise evaluates the policy matrix for one scenario. It is a pure
// function of its inputs — the recommendation cache depends on that.
func Advise(in Inputs) (*Recommendation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	in = in.withDefaults()
	spec, err := tracegen.Lookup(in.Workload)
	if err != nil {
		return nil, err
	}
	sync := predict.SyncInterval(spec)

	rec := &Recommendation{
		Workload: in.Workload, Nodes: in.Nodes,
		BudgetPct: in.BudgetPct, GiBPerNode: in.GiBPerNode,
		SyncIntervalNanos:  sync,
		ObservedMTBCENanos: in.ObservedMTBCENanos,
	}

	type mode struct {
		name     string
		perEvent int64
	}
	var modes []mode
	if in.PerEventNanos > 0 {
		modes = []mode{{name: "custom", perEvent: in.PerEventNanos}}
	} else {
		for _, m := range systems.LoggingModes() {
			modes = append(modes, mode{name: m.Name, perEvent: m.PerEventNanos})
		}
	}
	for _, m := range modes {
		a := ModeAssessment{Mode: m.name, PerEventNanos: m.perEvent}
		res, err := predict.Budget(in.Nodes, m.perEvent, sync, in.BudgetPct, in.GiBPerNode)
		switch {
		case errors.Is(err, predict.ErrNoFeasibleMTBCE):
			// Infeasible modes stay in the matrix: "never at this
			// per-event cost" is the answer, not an error.
		case err != nil:
			return nil, err
		default:
			a.Feasible = true
			a.MinMTBCENanos = res.MinMTBCENanos
			a.MaxCEPerNodeYear = res.MaxCEPerNodeYear
			a.MaxCEPerGiBYear = res.MaxCEPerGiBYear
			a.VsCielo = res.VsCielo
		}
		if in.ObservedMTBCENanos > 0 {
			ok := a.Feasible &&
				float64(in.ObservedMTBCENanos) >= RecommendHeadroom*float64(a.MinMTBCENanos)
			a.Satisfied = &ok
		}
		rec.Modes = append(rec.Modes, a)
	}

	if in.ObservedMTBCENanos > 0 {
		rec.RecommendedMode = pickMode(rec.Modes)
		rec.Retirement = retirement(in)
		rec.Checkpoint = checkpoint(in)
	}
	return rec, nil
}

// pickMode selects the most detailed (highest per-event cost) mode the
// node satisfies, falling back to the cheapest mode offered.
func pickMode(modes []ModeAssessment) string {
	best, bestCost := "", int64(-1)
	cheapest, cheapestCost := "", int64(-1)
	for _, m := range modes {
		if cheapestCost < 0 || m.PerEventNanos < cheapestCost {
			cheapest, cheapestCost = m.Mode, m.PerEventNanos
		}
		if m.Satisfied != nil && *m.Satisfied && m.PerEventNanos > bestCost {
			best, bestCost = m.Mode, m.PerEventNanos
		}
	}
	if best != "" {
		return best
	}
	return cheapest
}

// retirement builds the page-offlining verdict.
func retirement(in Inputs) *RetirementAdvice {
	adv := &RetirementAdvice{PageBudget: in.RetirePageBudget}
	if !in.FaultKnown {
		adv.Reason = "fault mode unclassified: not enough CE samples to distinguish " +
			"a concentrated fault from a scattered one; keep logging before retiring pages"
		return adv
	}
	fp := in.Fault.FootprintPages()
	adv.FaultKind = in.Fault.String()
	adv.Confidence = in.FaultConfidence
	adv.FootprintPages = fp
	if fp <= in.RetirePageBudget {
		adv.Worth = true
		adv.SuggestedThreshold = DefaultRetireThreshold
		adv.Reason = fmt.Sprintf("%s fault fits in %d of %d budget pages; retirement silences it",
			in.Fault, fp, in.RetirePageBudget)
	} else {
		adv.Reason = fmt.Sprintf("%s fault spans %d pages, beyond the %d-page budget; retirement cannot contain it",
			in.Fault, fp, in.RetirePageBudget)
	}
	return adv
}

// checkpoint retunes the Daly interval from the DUE rate implied by the
// observed MTBCE.
func checkpoint(in Inputs) *CheckpointAdvice {
	nodeMTBF := int64(float64(in.ObservedMTBCENanos) * in.CEtoDUERatio)
	if nodeMTBF <= 0 {
		return nil
	}
	cfg := due.Config{
		NodeMTBF:   nodeMTBF,
		Nodes:      in.Nodes,
		Checkpoint: in.CheckpointNanos,
		Restart:    in.RestartNanos,
	}
	adv := &CheckpointAdvice{
		NodeMTBFNanos:   nodeMTBF,
		SystemMTBFNanos: int64(cfg.SystemMTBF()),
		CheckpointNanos: in.CheckpointNanos,
		RestartNanos:    in.RestartNanos,
		YoungNanos:      due.YoungInterval(in.CheckpointNanos, cfg.SystemMTBF()),
		DalyNanos:       due.DalyInterval(in.CheckpointNanos, cfg.SystemMTBF()),
	}
	// A system MTBF below the checkpoint cost makes the expected
	// overhead blow up to +Inf; a non-finite value would abort JSON
	// encoding mid-response, so it stays at 0 ("no meaningful number").
	if pct, err := cfg.ExpectedOverheadPct(); err == nil && !math.IsInf(pct, 0) && !math.IsNaN(pct) {
		adv.OverheadPct = pct
	}
	return adv
}
