package advise

import (
	"math/rand"
	"testing"

	"repro/internal/retire"
)

// synthStream generates a CE address stream whose ground truth is one
// fault of the given kind, mimicking the footprints package retire
// assigns to each mode. n >= 2 recommended for the spread kinds.
func synthStream(rnd *rand.Rand, kind retire.FaultKind, n int) []uint64 {
	addrs := make([]uint64, n)
	switch kind {
	case retire.FaultCell:
		// One stuck bit: every CE reports the same address.
		a := uint64(rnd.Int63n(1 << 40))
		for i := range addrs {
			addrs[i] = a
		}
	case retire.FaultRow:
		// One row (8 KiB), hits spread across its columns.
		row := uint64(rnd.Int63n(1 << 27))
		for i := range addrs {
			// i<<3 in the low bits guarantees >= 2 distinct columns.
			addrs[i] = row<<rowShift | uint64(i%1024)<<colShift
		}
	case retire.FaultColumn:
		// One column coordinate repeated across many rows.
		col := uint64(rnd.Int63n(1 << (rowShift - colShift)))
		for i := range addrs {
			addrs[i] = uint64(i+1)<<rowShift | col<<colShift
		}
	default: // bank: scattered rows and columns
		for i := range addrs {
			addrs[i] = uint64(i+1)<<rowShift | uint64(i%1024)<<colShift
		}
	}
	return addrs
}

// TestClassifierRoundTrip is the property test: for every fault kind in
// retire's taxonomy, a synthetic stream generated with that mode as
// ground truth must classify back to the same kind, regardless of the
// order the events arrive in.
func TestClassifierRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for _, kind := range retire.Kinds() {
		for trial := 0; trial < 25; trial++ {
			n := DefaultMinSamples + rnd.Intn(100)
			stream := synthStream(rnd, kind, n)
			rnd.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

			var fp Footprint
			for _, a := range stream {
				fp.Add(a, 0)
			}
			c := fp.Classify(0)
			if !c.Known {
				t.Fatalf("%v trial %d: %d samples not classified", kind, trial, n)
			}
			if c.Kind != kind {
				t.Fatalf("%v trial %d: classified as %v (n=%d)", kind, trial, c.Kind, n)
			}
			if c.Confidence <= 0 || c.Confidence > 1 {
				t.Fatalf("%v trial %d: confidence %v outside (0, 1]", kind, trial, c.Confidence)
			}
		}
	}
}

func TestClassifierLowSampleAmbiguity(t *testing.T) {
	rnd := rand.New(rand.NewSource(12))
	for _, kind := range retire.Kinds() {
		stream := synthStream(rnd, kind, DefaultMinSamples-1)
		var fp Footprint
		for _, a := range stream {
			fp.Add(a, 0)
		}
		if c := fp.Classify(0); c.Known {
			t.Fatalf("%v: %d samples classified as %v; below the floor the verdict must stay unknown",
				kind, DefaultMinSamples-1, c.Kind)
		}
	}
}

// TestClassifierMixedFaults: a population mixing two concentrated fault
// modes must degrade toward the conservative bank verdict (its footprint
// shows several rows and several columns) rather than report either
// constituent with high confidence.
func TestClassifierMixedFaults(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	rowStream := synthStream(rnd, retire.FaultRow, 40)
	colStream := synthStream(rnd, retire.FaultColumn, 40)
	var fp Footprint
	for i := range rowStream {
		fp.Add(rowStream[i], 0)
		fp.Add(colStream[i], 0)
	}
	c := fp.Classify(0)
	if !c.Known {
		t.Fatal("80 samples must classify")
	}
	if c.Kind != retire.FaultBank {
		t.Fatalf("mixed row+column population classified as %v, want conservative bank", c.Kind)
	}
}

// TestClassifierPureCellHighConfidence: confidence grows with samples
// for an unambiguous fault.
func TestClassifierConfidenceGrowsWithSamples(t *testing.T) {
	var few, many Footprint
	for i := 0; i < DefaultMinSamples; i++ {
		few.Add(0xdead000, 0)
	}
	for i := 0; i < 50*DefaultMinSamples; i++ {
		many.Add(0xdead000, 0)
	}
	cf, cm := few.Classify(0), many.Classify(0)
	if cf.Kind != retire.FaultCell || cm.Kind != retire.FaultCell {
		t.Fatalf("cell streams classified %v / %v", cf.Kind, cm.Kind)
	}
	if cm.Confidence <= cf.Confidence {
		t.Fatalf("confidence did not grow: %v (n=%d) vs %v (n=%d)",
			cf.Confidence, DefaultMinSamples, cm.Confidence, 50*DefaultMinSamples)
	}
}

// TestFootprintOrderIndependence: merging the same observations in any
// order yields the identical classification — the footprint half of the
// determinism contract.
func TestFootprintOrderIndependence(t *testing.T) {
	rnd := rand.New(rand.NewSource(14))
	type obs struct {
		addr uint64
		bank int
	}
	// More distinct addresses than setCap, to exercise the bounded-set
	// keep-smallest union under permutation.
	obss := make([]obs, 3*setCap)
	for i := range obss {
		obss[i] = obs{addr: uint64(rnd.Int63n(1 << 40)), bank: rnd.Intn(16)}
	}
	var ref Footprint
	for _, o := range obss {
		ref.Add(o.addr, o.bank)
	}
	want := ref.Classify(0)
	for trial := 0; trial < 20; trial++ {
		perm := rnd.Perm(len(obss))
		var fp Footprint
		for _, pi := range perm {
			fp.Add(obss[pi].addr, obss[pi].bank)
		}
		if got := fp.Classify(0); got != want {
			t.Fatalf("trial %d: permuted insertion changed classification: %+v vs %+v", trial, got, want)
		}
	}
}

func TestBoundedSetKeepsSmallest(t *testing.T) {
	var s boundedSet
	for v := uint64(2 * setCap); v >= 1; v-- {
		s.add(v)
		s.add(v) // duplicates must not count
	}
	if s.size() != setCap {
		t.Fatalf("size = %d, want cap %d", s.size(), setCap)
	}
	for i, v := range s.xs {
		if v != uint64(i+1) {
			t.Fatalf("retained set must be the %d smallest: xs[%d] = %d", setCap, i, v)
		}
	}
}
