package advise

import (
	"sort"

	"repro/internal/retire"
)

// DRAM geometry assumed when decomposing a physical address into the
// coordinates the fault taxonomy cares about. It mirrors package
// retire's footprints: 4 KiB pages, 8 KiB rows (two pages per row),
// column identity taken as the 8-byte-aligned offset within the row —
// a column fault repeats the same intra-row offset across many rows.
const (
	pageShift = 12
	rowShift  = 13
	colMask   = (1 << rowShift) - 1
	colShift  = 3
)

// setCap bounds every distinct-value set in a footprint. Classification
// only needs "one vs a few vs many", so 64 retained values is plenty;
// the bound is what keeps per-node state O(1) under millions of nodes.
const setCap = 64

// boundedSet tracks up to setCap distinct uint64 values, kept sorted
// ascending. When the cap is exceeded the *largest* values are dropped:
// "the setCap smallest distinct members of the union" is a function of
// the value set alone, never of arrival order, which keeps footprint
// merges order-independent. Saturation (len == setCap) reads as "at
// least setCap distinct values".
type boundedSet struct {
	xs []uint64
}

func (s *boundedSet) add(v uint64) {
	i := sort.Search(len(s.xs), func(i int) bool { return s.xs[i] >= v })
	if i < len(s.xs) && s.xs[i] == v {
		return
	}
	if len(s.xs) == setCap {
		if i == setCap {
			return // larger than everything retained
		}
		s.xs = s.xs[:setCap-1] // drop the largest to make room
	}
	s.xs = append(s.xs, 0)
	copy(s.xs[i+1:], s.xs[i:])
	s.xs[i] = v
}

func (s *boundedSet) size() int { return len(s.xs) }

// Footprint is the bounded address-footprint sketch of one node's CE
// stream, from which the fault mode is classified. Like the estimator,
// it is a commutative aggregate: distinct-value sets under
// keep-smallest union plus a monotone sample counter.
type Footprint struct {
	samples uint64
	addrs   boundedSet
	pages   boundedSet
	rows    boundedSet
	cols    boundedSet
	banks   boundedSet
}

// Add ingests one CE address observation.
func (f *Footprint) Add(addr uint64, bank int) {
	f.samples++
	f.addrs.add(addr)
	f.pages.add(addr >> pageShift)
	f.rows.add(addr >> rowShift)
	f.cols.add((addr & colMask) >> colShift)
	f.banks.add(uint64(bank))
}

// Samples returns how many observations the footprint aggregates.
func (f *Footprint) Samples() uint64 { return f.samples }

// Classification is the classifier's verdict.
type Classification struct {
	// Kind is the inferred retire.FaultKind; only meaningful when
	// Known is set.
	Kind retire.FaultKind
	// Known is false while the sample count is below MinSamples — the
	// policy layer then treats the node's fault mode as unclassified
	// and recommends conservatively.
	Known bool
	// Confidence in (0, 1]: grows with sample count, discounted when
	// the footprint is not sharply of one mode (mixed fault
	// populations land here).
	Confidence float64
}

// DefaultMinSamples is the classification floor: below it the address
// footprint of a row/column/bank fault is indistinguishable from a
// couple of unlucky cells.
const DefaultMinSamples = 8

// Classify maps the footprint onto retire's cell/row/column/bank
// taxonomy:
//
//	one distinct address            -> cell
//	one distinct row                -> row  (addresses spread inside it)
//	one distinct column coordinate  -> column (same offset, many rows)
//	otherwise                       -> bank (scattered)
//
// A mixed fault population blurs these (a cell plus a column fault
// shows >1 row and >1 column), so it degrades toward bank — the
// conservative verdict, since bank-scale footprints are the ones page
// retirement cannot contain — with reduced confidence.
func (f *Footprint) Classify(minSamples int) Classification {
	if minSamples <= 0 {
		minSamples = DefaultMinSamples
	}
	if f.samples < uint64(minSamples) {
		return Classification{}
	}
	base := float64(f.samples) / float64(f.samples+DefaultMinSamples)
	c := Classification{Known: true}
	switch {
	case f.addrs.size() == 1:
		c.Kind = retire.FaultCell
		c.Confidence = base
	case f.rows.size() == 1:
		c.Kind = retire.FaultRow
		c.Confidence = base * spreadFactor(f.cols.size())
	case f.cols.size() == 1:
		c.Kind = retire.FaultColumn
		c.Confidence = base * spreadFactor(f.rows.size())
	default:
		c.Kind = retire.FaultBank
		spread := f.rows.size()
		if f.cols.size() < spread {
			spread = f.cols.size()
		}
		c.Confidence = base * spreadFactor(spread)
	}
	return c
}

// spreadFactor discounts verdicts that rest on only 2-3 distinct
// coordinates: a "column" seen across two rows is weak evidence, one
// seen across eight rows is conclusive.
func spreadFactor(distinct int) float64 {
	const conclusive = 4
	if distinct >= conclusive {
		return 1
	}
	return float64(distinct) / conclusive
}
