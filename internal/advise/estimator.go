package advise

import (
	"math"
	"sort"
)

// EstimatorConfig sizes the windowed MTBCE estimator.
type EstimatorConfig struct {
	// BucketNanos is the time-bucket width events are quantized into.
	// Default 60s.
	BucketNanos int64
	// WindowBuckets is how many trailing buckets are retained; older
	// counts fall out of the estimate entirely. Default 1440 (one day
	// at the default bucket width).
	WindowBuckets int
	// HalfLifeNanos is the exponential-decay half-life applied when
	// the windowed counts are turned into a rate: an event half a
	// half-life old counts sqrt(1/2) as much as a fresh one. Default
	// 4h.
	HalfLifeNanos int64
}

func (c EstimatorConfig) withDefaults() EstimatorConfig {
	if c.BucketNanos <= 0 {
		c.BucketNanos = 60 * 1e9
	}
	if c.WindowBuckets <= 0 {
		c.WindowBuckets = 1440
	}
	if c.HalfLifeNanos <= 0 {
		c.HalfLifeNanos = 4 * 3600 * 1e9
	}
	return c
}

// Estimator is a per-node online MTBCE estimator: a decayed-window MLE
// for the rate of an exponential CE arrival stream.
//
// Order independence is the load-bearing property (see docs/ADVISOR.md):
// ingest batches may arrive from concurrent collectors in any order,
// and the determinism contract requires that merging them in either
// order yields the same state. The state is therefore a commutative
// monoid over integer event counts:
//
//   - events are quantized into absolute time buckets (ts / BucketNanos),
//     so a bucket's identity does not depend on what arrived before it;
//   - per-bucket counts, the total count, and the min/max timestamps
//     are all commutative, associative aggregates;
//   - trimming drops buckets older than maxBucket-WindowBuckets+1, a
//     cutoff derived from the (commutative) max — applying trims in any
//     interleaving converges to the same retained set.
//
// No floating point enters the state. The rate estimate is a pure
// function computed from the canonical integer state at query time, so
// identical states produce bit-identical estimates.
type Estimator struct {
	cfg EstimatorConfig

	buckets map[int64]uint64 // bucket index -> event count (trimmed)
	minB    int64            // smallest bucket index ever observed
	maxB    int64            // largest bucket index ever observed
	total   uint64           // events ever ingested (incl. trimmed)
	firstNs int64            // min event timestamp ever observed
	lastNs  int64            // max event timestamp ever observed
}

// NewEstimator returns an empty estimator.
func NewEstimator(cfg EstimatorConfig) *Estimator {
	return &Estimator{cfg: cfg.withDefaults(), buckets: map[int64]uint64{}}
}

// Add ingests one event timestamp (nanoseconds, must be positive —
// validated at the HTTP layer). Call Trim after a batch of Adds.
func (e *Estimator) Add(tsNanos int64) {
	b := tsNanos / e.cfg.BucketNanos
	if e.total == 0 {
		e.minB, e.maxB = b, b
		e.firstNs, e.lastNs = tsNanos, tsNanos
	} else {
		if b < e.minB {
			e.minB = b
		}
		if b > e.maxB {
			e.maxB = b
		}
		if tsNanos < e.firstNs {
			e.firstNs = tsNanos
		}
		if tsNanos > e.lastNs {
			e.lastNs = tsNanos
		}
	}
	e.buckets[b]++
	e.total++
}

// Trim drops buckets that have fallen out of the retention window.
// Idempotent; the cutoff depends only on the max bucket, so trim
// placement between merges cannot change the converged state.
func (e *Estimator) Trim() {
	if e.total == 0 {
		return
	}
	cutoff := e.maxB - int64(e.cfg.WindowBuckets) + 1
	for b := range e.buckets {
		if b < cutoff {
			delete(e.buckets, b)
		}
	}
}

// Estimate is the queryable summary of one node's CE stream.
type Estimate struct {
	// TotalEvents counts every event ever ingested for the node.
	TotalEvents uint64 `json:"events"`
	// WindowEvents counts the events still inside the retention window.
	WindowEvents uint64 `json:"window_events"`
	// FirstNanos and LastNanos bound the observed timestamps.
	FirstNanos int64 `json:"first_ns"`
	LastNanos  int64 `json:"last_ns"`
	// MTBCENanos is the decayed-window MLE of the per-node mean time
	// between CEs; 0 when no events have been seen.
	MTBCENanos int64 `json:"mtbce_ns"`
	// CEPerYear is the equivalent annualized rate (0 when unknown).
	CEPerYear float64 `json:"ce_per_year"`
}

// Estimate computes the decayed-window MLE from the canonical state.
//
// With per-bucket weights w(b) = 2^-(age/halflife) anchored at the
// newest bucket, the MLE for an exponential stream observed with decay
// is  rate = sum(w*count) / sum(w*width)  over the observation span —
// the span being every bucket (occupied or not) between the first
// observation (clipped to the window) and the newest bucket. MTBCE is
// the reciprocal. All iteration is in sorted bucket order so the float
// reduction is a fixed-order, deterministic function of the state.
func (e *Estimator) Estimate() Estimate {
	est := Estimate{TotalEvents: e.total, FirstNanos: e.firstNs, LastNanos: e.lastNs}
	if e.total == 0 {
		return est
	}
	start := e.maxB - int64(e.cfg.WindowBuckets) + 1
	if e.minB > start {
		start = e.minB
	}
	keys := make([]int64, 0, len(e.buckets))
	for b := range e.buckets {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	halfLives := float64(e.cfg.BucketNanos) / float64(e.cfg.HalfLifeNanos)
	weightAt := func(b int64) float64 {
		return math.Exp2(-float64(e.maxB-b) * halfLives)
	}
	var wEvents float64
	for _, b := range keys {
		est.WindowEvents += e.buckets[b]
		wEvents += weightAt(b) * float64(e.buckets[b])
	}
	var wTime float64
	for b := start; b <= e.maxB; b++ {
		wTime += weightAt(b) * float64(e.cfg.BucketNanos)
	}
	if wEvents <= 0 || wTime <= 0 {
		return est
	}
	mtbce := wTime / wEvents
	est.MTBCENanos = int64(math.Round(mtbce))
	est.CEPerYear = 365.25 * 24 * 3600 * 1e9 / mtbce
	return est
}

// quantumPerOctave is the recommendation-cache resolution: MTBCE
// estimates are snapped to 1/8-octave steps (at most ~4.4% relative
// error), so nearby estimator states share one cached policy answer.
const quantumPerOctave = 8

// QuantizeMTBCE snaps an MTBCE estimate to the cache quantum and
// returns the quantum's representative value. Zero stays zero.
func QuantizeMTBCE(mtbceNanos int64) int64 {
	if mtbceNanos <= 0 {
		return 0
	}
	q := math.Round(quantumPerOctave * math.Log2(float64(mtbceNanos)))
	return int64(math.Round(math.Exp2(q / quantumPerOctave)))
}
