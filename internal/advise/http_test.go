package advise

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
)

func ndjson(t *testing.T, events []Event) string {
	t.Helper()
	var b strings.Builder
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func ingest(t *testing.T, s *Service, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/advise/ingest", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.HandleIngest(w, req)
	return w
}

func recommend(t *testing.T, s *Service, query string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", "/v1/advise/recommend?"+query, nil)
	w := httptest.NewRecorder()
	s.HandleRecommend(w, req)
	return w
}

func TestIngestHappyPath(t *testing.T) {
	s := NewService(Config{})
	events := []Event{
		ev("acme", "n1", 60e9, 0x1000),
		ev("acme", "n1", 120e9, 0x1008),
		ev("acme", "n2", 60e9, 0x2000),
	}
	w := ingest(t, s, ndjson(t, events))
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var res IngestResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 || res.Nodes != 2 {
		t.Fatalf("result: %+v", res)
	}
	if st := s.Stats(); st.Store.Events != 3 || st.IngestRejects != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestIngestRejectsBadBatches(t *testing.T) {
	s := NewService(Config{MaxBatchEvents: 2})
	good := `{"tenant":"acme","node":"n1","ts_ns":1,"addr":16}`
	cases := []struct {
		name, body, wantFrag string
	}{
		{"empty", "\n\n", "empty batch"},
		{"bad json", good + "\n{nope\n", "line 2"},
		{"unknown field", `{"tenant":"acme","node":"n1","ts_ns":1,"addr":16,"extra":1}`, "line 1"},
		{"bad event", `{"tenant":"acme","node":"n1","ts_ns":0,"addr":16}`, "ts_ns"},
		{"whitespace name", `{"tenant":"ac me","node":"n1","ts_ns":1,"addr":16}`, "tenant"},
		{"oversized", good + "\n" + good + "\n" + good + "\n", "exceeds 2 events"},
	}
	for _, tc := range cases {
		w := ingest(t, s, tc.body)
		if w.Code != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body)
			continue
		}
		if !strings.Contains(w.Body.String(), tc.wantFrag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, w.Body, tc.wantFrag)
		}
	}
	if st := s.Stats(); st.IngestRejects != uint64(len(cases)) {
		t.Fatalf("IngestRejects = %d, want %d", st.IngestRejects, len(cases))
	}
	if st := s.Stats(); st.Store.Events != 0 {
		t.Fatalf("rejected batches leaked events: %+v", st.Store)
	}
}

func TestIngestLimitReturns429(t *testing.T) {
	s := NewService(Config{Store: StoreConfig{MaxNodesPerTenant: 1}})
	w := ingest(t, s, ndjson(t, []Event{
		ev("acme", "n1", 60e9, 1),
		ev("acme", "n2", 60e9, 2),
	}))
	if w.Code != 429 {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body)
	}
}

func TestRecommendValidation(t *testing.T) {
	s := NewService(Config{})
	cases := []struct {
		name, query, wantFrag string
		wantCode              int
	}{
		{"unknown params", "tenant=a&node=n&bogus=1&zzz=2", "[bogus zzz]", 400},
		{"missing tenant", "node=n", "tenant is required", 400},
		{"missing node", "tenant=a", "node is required", 400},
		{"bad nodes", "tenant=a&node=n&nodes=many", "nodes", 400},
		{"bad budget", "tenant=a&node=n&budget=lots", "budget", 400},
		{"unknown node", "tenant=a&node=n", "no ingested events", 404},
	}
	for _, tc := range cases {
		w := recommend(t, s, tc.query)
		if w.Code != tc.wantCode {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.wantCode, w.Body)
			continue
		}
		if !strings.Contains(w.Body.String(), tc.wantFrag) {
			t.Errorf("%s: body %q does not mention %q", tc.name, w.Body, tc.wantFrag)
		}
	}
}

// seedStream ingests a healthy row-fault stream for acme/n1.
func seedStream(t *testing.T, s *Service) {
	t.Helper()
	var events []Event
	for i := 0; i < 32; i++ {
		events = append(events, ev("acme", "n1", int64(i+1)*3600e9, 0xbeef<<rowShift|uint64(i)<<colShift))
	}
	if w := ingest(t, s, ndjson(t, events)); w.Code != 200 {
		t.Fatalf("seed ingest: %d %s", w.Code, w.Body)
	}
}

func TestRecommendCacheOutcomes(t *testing.T) {
	cached := NewService(Config{})
	uncached := NewService(Config{CacheEntries: -1})
	seedStream(t, cached)
	seedStream(t, uncached)

	w1 := recommend(t, cached, "tenant=acme&node=n1")
	w2 := recommend(t, cached, "tenant=acme&node=n1")
	w3 := recommend(t, uncached, "tenant=acme&node=n1")
	for i, w := range []*httptest.ResponseRecorder{w1, w2, w3} {
		if w.Code != 200 {
			t.Fatalf("request %d: status %d: %s", i+1, w.Code, w.Body)
		}
	}
	if h := w1.Header().Get(CacheHeader); h != "miss" {
		t.Fatalf("first lookup: %s = %q, want miss", CacheHeader, h)
	}
	if h := w2.Header().Get(CacheHeader); h != "hit" {
		t.Fatalf("second lookup: %s = %q, want hit", CacheHeader, h)
	}
	if h := w3.Header().Get(CacheHeader); h != "bypass" {
		t.Fatalf("uncached lookup: %s = %q, want bypass", CacheHeader, h)
	}
	// Bit-identical degradation: hit, miss and bypass bodies all match.
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("hit body differs from miss body")
	}
	if !bytes.Equal(w1.Body.Bytes(), w3.Body.Bytes()) {
		t.Fatalf("bypass body differs from cached body:\n%s\nvs\n%s", w1.Body, w3.Body)
	}
	st := cached.Stats()
	if st.RecommendMisses != 1 || st.RecommendHits != 1 || st.CacheEntries != 1 {
		t.Fatalf("cached stats: %+v", st)
	}
	if st := uncached.Stats(); st.RecommendBypasses != 1 || st.CacheEntries != 0 {
		t.Fatalf("uncached stats: %+v", st)
	}
}

func TestRecommendScenarioOverrides(t *testing.T) {
	s := NewService(Config{})
	seedStream(t, s)
	w := recommend(t, s, "tenant=acme&node=n1&workload=hpcg&nodes=512&budget=5&gib=128")
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var rec Recommendation
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Workload != "hpcg" || rec.Nodes != 512 || rec.BudgetPct != 5 || rec.GiBPerNode != 128 {
		t.Fatalf("overrides not applied: %+v", rec)
	}
	if rec.Estimate == nil || rec.Estimate.Node != "n1" || rec.Estimate.FaultKind != "row" {
		t.Fatalf("estimate section: %+v", rec.Estimate)
	}
	if rec.Estimate.MTBCENanos <= 0 || rec.Estimate.MTBCEQuantizedNanos != QuantizeMTBCE(rec.Estimate.MTBCENanos) {
		t.Fatalf("quantization mismatch: %+v", rec.Estimate)
	}

	w = recommend(t, s, "tenant=acme&node=n1&perevent_ns=5000000")
	var custom Recommendation
	if err := json.Unmarshal(w.Body.Bytes(), &custom); err != nil {
		t.Fatal(err)
	}
	if len(custom.Modes) != 1 || custom.Modes[0].Mode != "custom" || custom.Modes[0].PerEventNanos != 5000000 {
		t.Fatalf("perevent_ns override: %+v", custom.Modes)
	}
}

// TestRecommendDeterminismPermutedBatches is the PR's acceptance test:
// the same event batches ingested in permuted order (and with events
// shuffled inside each batch) must produce byte-identical recommend
// responses for every tracked node.
func TestRecommendDeterminismPermutedBatches(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))

	// 12 batches spanning 2 tenants x 3 nodes, mixed fault geometries.
	var batches [][]Event
	for b := 0; b < 12; b++ {
		var batch []Event
		for i := 0; i < 25; i++ {
			tenant := []string{"acme", "globex"}[(b+i)%2]
			node := fmt.Sprintf("n%d", i%3)
			ts := int64(1+rnd.Intn(14*24*3600)) * 1e9
			addr := uint64(rnd.Int63n(1 << 40))
			batch = append(batch, Event{Tenant: tenant, Node: node, TimeNanos: ts, Addr: addr, Bank: i % 8})
		}
		batches = append(batches, batch)
	}
	queries := []string{
		"tenant=acme&node=n0", "tenant=acme&node=n1", "tenant=acme&node=n2",
		"tenant=globex&node=n0", "tenant=globex&node=n1", "tenant=globex&node=n2",
		"tenant=acme&node=n0&workload=hpcg&nodes=2048&budget=5",
	}

	responses := func(s *Service) [][]byte {
		var out [][]byte
		for _, q := range queries {
			w := recommend(t, s, q)
			if w.Code != 200 {
				t.Fatalf("recommend %s: %d %s", q, w.Code, w.Body)
			}
			out = append(out, w.Body.Bytes())
		}
		return out
	}

	ref := NewService(Config{})
	for _, b := range batches {
		if w := ingest(t, ref, ndjson(t, b)); w.Code != 200 {
			t.Fatalf("ref ingest: %d %s", w.Code, w.Body)
		}
	}
	want := responses(ref)

	for trial := 0; trial < 5; trial++ {
		perm := rnd.Perm(len(batches))
		s := NewService(Config{CacheEntries: trial % 2 * -1}) // alternate cache on/off
		for _, bi := range perm {
			batch := append([]Event(nil), batches[bi]...)
			rnd.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
			if w := ingest(t, s, ndjson(t, batch)); w.Code != 200 {
				t.Fatalf("trial %d ingest: %d %s", trial, w.Code, w.Body)
			}
		}
		got := responses(s)
		for i := range queries {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("trial %d: query %q body diverged under permuted ingest:\n got: %s\nwant: %s",
					trial, queries[i], got[i], want[i])
			}
		}
	}
}
