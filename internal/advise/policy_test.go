package advise

import (
	"reflect"
	"testing"

	"repro/internal/retire"
)

func baseInputs() Inputs {
	return Inputs{Workload: "lulesh", Nodes: 16384, BudgetPct: 10, GiBPerNode: 700}
}

func TestAdviseValidation(t *testing.T) {
	cases := []func(*Inputs){
		func(in *Inputs) { in.Workload = "" },
		func(in *Inputs) { in.Workload = "doom" },
		func(in *Inputs) { in.Nodes = 0 },
		func(in *Inputs) { in.BudgetPct = -1 },
		func(in *Inputs) { in.GiBPerNode = 0 },
		func(in *Inputs) { in.PerEventNanos = -1 },
		func(in *Inputs) { in.ObservedMTBCENanos = -1 },
	}
	for i, mutate := range cases {
		in := baseInputs()
		mutate(&in)
		if _, err := Advise(in); err == nil {
			t.Errorf("case %d: invalid inputs %+v accepted", i, in)
		}
	}
}

func TestAdviseModeMatrix(t *testing.T) {
	rec, err := Advise(baseInputs())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Modes) != 3 {
		t.Fatalf("want the three catalog modes, got %+v", rec.Modes)
	}
	// Costlier logging demands a higher MTBCE floor.
	for i := 1; i < len(rec.Modes); i++ {
		prev, cur := rec.Modes[i-1], rec.Modes[i]
		if !prev.Feasible || !cur.Feasible {
			t.Fatalf("catalog modes must be feasible at 10%%: %+v", rec.Modes)
		}
		if cur.PerEventNanos > prev.PerEventNanos && cur.MinMTBCENanos <= prev.MinMTBCENanos {
			t.Fatalf("floor not monotone in per-event cost: %+v", rec.Modes)
		}
	}
	if rec.RecommendedMode != "" || rec.Retirement != nil || rec.Checkpoint != nil {
		t.Fatalf("no observation given, yet recommendation sections present: %+v", rec)
	}
}

func TestAdviseInfeasibleModeIsAnswerNotError(t *testing.T) {
	in := baseInputs()
	in.PerEventNanos = 1e18 // ~31 years per CE: no MTBCE can absorb that
	rec, err := Advise(in)
	if err != nil {
		t.Fatalf("infeasibility must not be an error: %v", err)
	}
	if len(rec.Modes) != 1 || rec.Modes[0].Mode != "custom" {
		t.Fatalf("explicit per-event cost must replace the catalog: %+v", rec.Modes)
	}
	if rec.Modes[0].Feasible {
		t.Fatalf("mode reported feasible: %+v", rec.Modes[0])
	}
}

func TestAdviseRecommendsRichestAffordableMode(t *testing.T) {
	in := baseInputs()
	in.ObservedMTBCENanos = 400_000 * 1e9 // very healthy DRAM: ~4.6 days MTBCE
	rec, err := Advise(in)
	if err != nil {
		t.Fatal(err)
	}
	if rec.RecommendedMode != "firmware-emca" {
		t.Fatalf("healthy node should afford firmware-emca, got %q", rec.RecommendedMode)
	}

	in.ObservedMTBCENanos = 1e6 // a CE every millisecond: only hardware logging survives
	rec, err = Advise(in)
	if err != nil {
		t.Fatal(err)
	}
	if rec.RecommendedMode != "hardware-only" {
		t.Fatalf("storming node should fall back to hardware-only, got %q", rec.RecommendedMode)
	}
}

func TestAdviseRetirementVerdicts(t *testing.T) {
	in := baseInputs()
	in.ObservedMTBCENanos = 3600e9
	in.FaultKnown = true
	in.Fault = retire.FaultRow
	in.FaultConfidence = 0.9
	rec, err := Advise(in)
	if err != nil {
		t.Fatal(err)
	}
	r := rec.Retirement
	if r == nil || !r.Worth || r.FootprintPages != retire.FaultRow.FootprintPages() {
		t.Fatalf("row fault should be worth retiring: %+v", r)
	}
	if r.SuggestedThreshold != DefaultRetireThreshold {
		t.Fatalf("threshold: %+v", r)
	}

	in.Fault = retire.FaultBank
	rec, err = Advise(in)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Retirement.Worth {
		t.Fatalf("bank fault (%d pages) cannot fit the %d-page budget: %+v",
			retire.FaultBank.FootprintPages(), DefaultRetirePageBudget, rec.Retirement)
	}

	in.FaultKnown = false
	rec, err = Advise(in)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Retirement == nil || rec.Retirement.Worth || rec.Retirement.Reason == "" {
		t.Fatalf("unclassified fault must advise waiting, with a reason: %+v", rec.Retirement)
	}
}

func TestAdviseCheckpointRetune(t *testing.T) {
	in := baseInputs()
	in.ObservedMTBCENanos = 3600e9
	rec, err := Advise(in)
	if err != nil {
		t.Fatal(err)
	}
	c := rec.Checkpoint
	if c == nil {
		t.Fatal("observation given but no checkpoint advice")
	}
	if c.NodeMTBFNanos != int64(DefaultCEtoDUERatio)*3600e9 {
		t.Fatalf("NodeMTBF = %d, want MTBCE x %d", c.NodeMTBFNanos, DefaultCEtoDUERatio)
	}
	if c.SystemMTBFNanos <= 0 || c.SystemMTBFNanos >= c.NodeMTBFNanos {
		t.Fatalf("system MTBF must shrink with machine size: %+v", c)
	}
	if c.DalyNanos <= 0 || c.YoungNanos <= 0 {
		t.Fatalf("intervals: %+v", c)
	}
	if c.CheckpointNanos != DefaultCheckpointNanos || c.RestartNanos != DefaultRestartNanos {
		t.Fatalf("default costs not echoed: %+v", c)
	}
}

// TestAdviseIsPure: identical inputs produce deeply equal outputs — the
// property the recommendation cache is built on.
func TestAdviseIsPure(t *testing.T) {
	in := baseInputs()
	in.ObservedMTBCENanos = 7200e9
	in.FaultKnown = true
	in.Fault = retire.FaultColumn
	in.FaultConfidence = 0.75
	a, err := Advise(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Advise(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Advise is not pure:\n a %+v\n b %+v", a, b)
	}
}
