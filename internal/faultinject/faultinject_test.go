package faultinject

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fireSeq collects the fire/no-fire pattern of n evaluations on a
// fresh injector built from cfg.
func fireSeq(t *testing.T, cfg SiteConfig, site string, n int) []bool {
	t.Helper()
	inj, err := NewInjector(Plan{site: cfg})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = inj.fire(context.Background(), site) != nil
	}
	return out
}

func TestDisarmedFireIsNoOp(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("armed after Disarm")
	}
	for _, site := range Sites() {
		if err := Fire(context.Background(), site); err != nil {
			t.Fatalf("disarmed fire at %s: %v", site, err)
		}
	}
	if s := Snapshot(); s.Armed || len(s.Sites) != 0 {
		t.Fatalf("disarmed snapshot %+v", s)
	}
}

func TestDeterministicStream(t *testing.T) {
	cfg := SiteConfig{Kind: KindError, Probability: 0.3, Seed: 7}
	a := fireSeq(t, cfg, SiteJobWorker, 200)
	b := fireSeq(t, cfg, SiteJobWorker, 200)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at evaluation %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == 200 {
		t.Fatalf("p=0.3 fired %d/200 times", fired)
	}
	// A different seed must yield a different pattern.
	cfg.Seed = 8
	c := fireSeq(t, cfg, SiteJobWorker, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not change the stream")
	}
}

func TestProbabilityExtremes(t *testing.T) {
	for _, fired := range fireSeq(t, SiteConfig{Kind: KindError, Probability: 0}, SiteDecode, 100) {
		if fired {
			t.Fatal("p=0 fired")
		}
	}
	for _, fired := range fireSeq(t, SiteConfig{Kind: KindError, Probability: 1}, SiteDecode, 100) {
		if !fired {
			t.Fatal("p=1 skipped")
		}
	}
}

func TestCountBudgetExhausts(t *testing.T) {
	seq := fireSeq(t, SiteConfig{Kind: KindError, Probability: 1, Count: 3}, SiteCacheFill, 10)
	fired := 0
	for _, f := range seq {
		if f {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("count=3 fired %d times", fired)
	}
	if !seq[0] || !seq[1] || !seq[2] || seq[3] {
		t.Fatalf("budget not consumed front-first: %v", seq)
	}
}

func TestErrorKindIsRetryable(t *testing.T) {
	inj, err := NewInjector(Plan{SiteJobWorker: {Kind: KindError, Probability: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ferr := inj.fire(context.Background(), SiteJobWorker)
	var fe *Error
	if !errors.As(ferr, &fe) || fe.Site != SiteJobWorker || !fe.Retryable() {
		t.Fatalf("injected error %v (%T)", ferr, ferr)
	}
	if !IsInjected(ferr) {
		t.Fatal("IsInjected missed an injected error")
	}
	if errors.Is(ferr, context.Canceled) {
		t.Fatal("error kind should not read as cancellation")
	}
}

func TestCancelKindReadsAsCanceled(t *testing.T) {
	inj, err := NewInjector(Plan{SiteHandler: {Kind: KindCancel, Probability: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ferr := inj.fire(context.Background(), SiteHandler)
	if !errors.Is(ferr, context.Canceled) {
		t.Fatalf("cancel kind: %v", ferr)
	}
}

func TestPanicKindThrowsPanicValue(t *testing.T) {
	inj, err := NewInjector(Plan{SiteRepetition: {Kind: KindPanic, Probability: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		p, ok := r.(Panic)
		if !ok || p.Site != SiteRepetition {
			t.Fatalf("recovered %v (%T)", r, r)
		}
	}()
	_ = inj.fire(context.Background(), SiteRepetition)
	t.Fatal("panic kind did not panic")
}

func TestDelayKindHonorsContext(t *testing.T) {
	inj, err := NewInjector(Plan{SiteHandler: {
		Kind: KindDelay, Probability: 1, DelayNanos: int64(10 * time.Second),
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	ferr := inj.fire(ctx, SiteHandler)
	if !errors.Is(ferr, context.DeadlineExceeded) {
		t.Fatalf("delay under expired ctx: %v", ferr)
	}
	if time.Since(start) > time.Second {
		t.Fatal("delay ignored the context deadline")
	}
}

func TestArmSnapshotDisarm(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm(Plan{SiteJobWorker: {Kind: KindError, Probability: 1, Count: 2}}); err != nil {
		t.Fatal(err)
	}
	if !Armed() {
		t.Fatal("not armed")
	}
	for i := 0; i < 5; i++ {
		_ = Fire(context.Background(), SiteJobWorker)
	}
	s := Snapshot()
	if !s.Armed || len(s.Sites) != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	if got := s.Sites[0]; got.Site != SiteJobWorker || got.Evals != 5 || got.Fired != 2 {
		t.Fatalf("site stats %+v", got)
	}
	Disarm()
	if err := Fire(context.Background(), SiteJobWorker); err != nil {
		t.Fatalf("fire after disarm: %v", err)
	}
}

func TestPlanValidation(t *testing.T) {
	cases := map[string]Plan{
		"unknown site": {"nonesuch.site": {Kind: KindError, Probability: 1}},
		"unknown kind": {SiteJobWorker: {Kind: "meltdown", Probability: 1}},
		"p too big":    {SiteJobWorker: {Kind: KindError, Probability: 1.5}},
		"p negative":   {SiteJobWorker: {Kind: KindError, Probability: -0.1}},
		"bad delay":    {SiteJobWorker: {Kind: KindDelay, Probability: 1, DelayNanos: -1}},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
		if err := Arm(p); err == nil {
			Disarm()
			t.Errorf("%s: armed", name)
		}
	}
}

func TestLoadPlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "faults.json")
	body := `{
  "jobs.worker":   {"kind": "panic", "p": 0.2, "seed": 42},
  "simcache.fill": {"kind": "error", "p": 0.5, "count": 10},
  "server.handler": {"kind": "delay", "p": 0.1, "delay_ns": 1000000}
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[SiteJobWorker].Kind != KindPanic || p[SiteCacheFill].Count != 10 {
		t.Fatalf("plan %+v", p)
	}
	if _, err := LoadPlan(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"jobs.worker": {"kind": "error", "p": 2}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(bad); err == nil {
		t.Fatal("invalid plan loaded")
	}
	unknown := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknown, []byte(`{"jobs.worker": {"kindz": "error"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(unknown); err == nil {
		t.Fatal("unknown field accepted")
	}
}
