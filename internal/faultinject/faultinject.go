// Package faultinject is the daemon's EINJ: a deterministic,
// seed-driven fault-injection harness mirroring the source paper's
// node-level methodology (APEI EINJ error injection) at the service
// layer. Named injection sites are compiled into the pipeline — the
// jobs worker body, the simcache fill path, the per-repetition
// simulation loop, and the HTTP handler and decode paths — and each
// site can be armed with one fault kind, a firing probability, an
// optional firing budget and a seed. Disarmed (the default), a site
// costs one atomic load and a nil check; nothing sleeps, allocates or
// locks, so production binaries carry the sites for free.
//
// Fault kinds are named after the EINJ error classes they play the
// role of (see docs/FAULTS.md for the mapping):
//
//	error  — the touched operation fails with a retryable *Error
//	panic  — the touched goroutine panics with a Panic value
//	delay  — the touched operation stalls for DelayNanos
//	cancel — the touched operation observes context.Canceled
//
// Determinism: each site draws from its own splitmix64 stream seeded
// by SiteConfig.Seed (mixed with the site name), so a fixed plan
// yields a fixed per-site fire/no-fire sequence. Concurrent callers of
// the same site consume the stream in arrival order; the *schedule* of
// which caller is faulted may vary across runs, but the hardened
// pipeline retries faulted work with unchanged simulation seeds, so
// end results stay bit-identical regardless.
package faultinject

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a fault class.
type Kind string

// The four fault kinds, named like EINJ error types.
const (
	// KindError makes the site return a retryable *Error.
	KindError Kind = "error"
	// KindPanic makes the site panic with a Panic value.
	KindPanic Kind = "panic"
	// KindDelay makes the site sleep for DelayNanos (honoring ctx).
	KindDelay Kind = "delay"
	// KindCancel makes the site fail with context.Canceled.
	KindCancel Kind = "cancel"
)

// Injection sites compiled into the pipeline. Arm only accepts these
// names, so a plan that drifts from the code fails loudly.
const (
	// SiteJobWorker fires at the start of every job attempt
	// (internal/jobs worker body, inside the recover scope).
	SiteJobWorker = "jobs.worker"
	// SiteCacheFill fires in the baseline-cache fill path
	// (internal/simcache), before the builder runs.
	SiteCacheFill = "simcache.fill"
	// SiteRepetition fires at the start of every simulation
	// repetition (internal/core repeated-run loops).
	SiteRepetition = "core.repetition"
	// SiteHandler fires at the top of every HTTP handler
	// (internal/server), inside the recovery middleware.
	SiteHandler = "server.handler"
	// SiteDecode fires in the request-body decode path
	// (internal/server).
	SiteDecode = "server.decode"
	// SiteClusterShard fires at the start of every cluster shard
	// execution on a worker (internal/cluster), inside the jobs-queue
	// recovery scope, so distributed sweeps can be drilled with
	// worker-side faults.
	SiteClusterShard = "cluster.shard"
	// SiteAdviseIngest fires in the advisor's CE-stream ingest path
	// (internal/server -> internal/advise), after a batch is parsed
	// and validated but before any of it is applied to the per-node
	// estimator state, so a faulted batch is rejected whole and a
	// client retry cannot double-count events.
	SiteAdviseIngest = "advise.ingest"
	// SiteJournalAppend fires in the write-ahead log's append path
	// (internal/journal), before the record is framed and written, so
	// crash drills can prove the pipeline degrades to lower durability
	// — never to a crash — when the log cannot accept a record.
	SiteJournalAppend = "journal.append"
	// SiteJournalSync fires in the write-ahead log's explicit fsync
	// path (internal/journal.Writer.Sync).
	SiteJournalSync = "journal.sync"
	// SiteJournalReplay fires once per segment during recovery replay
	// (internal/journal.Replay), so restart drills can exercise a
	// recovery that itself fails partway.
	SiteJournalReplay = "journal.replay"
	// SiteStoreWrite fires in the on-disk result store's write path
	// (internal/simcache.Store), before the temp file is created, so
	// chaos drills can prove persistence failures only cost durability,
	// never correctness.
	SiteStoreWrite = "store.write"
)

// Sites lists every known injection site, sorted.
func Sites() []string {
	s := []string{SiteJobWorker, SiteCacheFill, SiteRepetition, SiteHandler, SiteDecode, SiteClusterShard, SiteAdviseIngest,
		SiteJournalAppend, SiteJournalSync, SiteJournalReplay, SiteStoreWrite}
	sort.Strings(s)
	return s
}

func knownSite(name string) bool {
	for _, s := range Sites() {
		if s == name {
			return true
		}
	}
	return false
}

// SiteConfig arms one site.
type SiteConfig struct {
	// Kind selects the fault class.
	Kind Kind `json:"kind"`
	// Probability is the per-evaluation chance of firing, in [0, 1].
	Probability float64 `json:"p"`
	// Count bounds how many times the site fires; 0 means unlimited.
	Count uint64 `json:"count,omitempty"`
	// DelayNanos is the stall length for KindDelay (default 10ms).
	DelayNanos int64 `json:"delay_ns,omitempty"`
	// Seed drives the site's private fire/no-fire stream.
	Seed uint64 `json:"seed,omitempty"`
}

func (c SiteConfig) validate(site string) error {
	switch c.Kind {
	case KindError, KindPanic, KindDelay, KindCancel:
	default:
		return fmt.Errorf("faultinject: site %s: unknown kind %q", site, c.Kind)
	}
	if c.Probability < 0 || c.Probability > 1 {
		return fmt.Errorf("faultinject: site %s: probability %g outside [0, 1]", site, c.Probability)
	}
	if c.DelayNanos < 0 {
		return fmt.Errorf("faultinject: site %s: negative delay %d", site, c.DelayNanos)
	}
	return nil
}

// Plan maps site names to their armed configuration.
type Plan map[string]SiteConfig

// Validate checks every site name and configuration.
func (p Plan) Validate() error {
	for site, cfg := range p {
		if !knownSite(site) {
			return fmt.Errorf("faultinject: unknown site %q (known: %v)", site, Sites())
		}
		if err := cfg.validate(site); err != nil {
			return err
		}
	}
	return nil
}

// LoadPlan reads a JSON plan file: an object mapping site names to
// configurations, e.g.
//
//	{"jobs.worker": {"kind": "panic", "p": 0.2, "seed": 42},
//	 "simcache.fill": {"kind": "error", "p": 0.5, "count": 10}}
func LoadPlan(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultinject: read plan: %w", err)
	}
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faultinject: parse plan %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Error is the failure injected by KindError faults. It is retryable
// by design: like a corrected DRAM error, the fault is transient and
// the same operation succeeds when re-run.
type Error struct {
	// Site is the injection site that fired.
	Site string
	// Kind is the fault class that produced the error.
	Kind Kind
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s", e.Kind, e.Site)
}

// Retryable marks the fault transient for the retry machinery in
// internal/jobs and internal/core.
func (e *Error) Retryable() bool { return true }

// Unwrap lets cancel-kind injections satisfy
// errors.Is(err, context.Canceled) so they follow the real
// cancellation path rather than the retry path.
func (e *Error) Unwrap() error {
	if e.Kind == KindCancel {
		return context.Canceled
	}
	return nil
}

// Panic is the value thrown by KindPanic faults, so recovery code and
// tests can tell an injected panic from a genuine one.
type Panic struct {
	// Site is the injection site that fired.
	Site string
}

func (p Panic) String() string { return "faultinject: injected panic at " + p.Site }

// siteState is one armed site's private stream and counters.
type siteState struct {
	cfg SiteConfig

	mu    sync.Mutex
	rng   uint64
	evals uint64
	fired uint64
}

// splitmix64 advances the state and returns the next value.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashString folds a string into a seed (FNV-1a 64).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// roll reports whether the site fires this evaluation.
func (s *siteState) roll() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evals++
	if s.cfg.Count > 0 && s.fired >= s.cfg.Count {
		return false
	}
	// 53-bit uniform in [0, 1).
	u := float64(splitmix64(&s.rng)>>11) / float64(1<<53)
	if u >= s.cfg.Probability {
		return false
	}
	s.fired++
	return true
}

// Injector is an armed set of sites. Construct with NewInjector; most
// callers use the package-level Arm/Disarm/Fire instead.
type Injector struct {
	sites map[string]*siteState
}

// NewInjector validates the plan and builds its per-site streams.
func NewInjector(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{sites: map[string]*siteState{}}
	for site, cfg := range p {
		inj.sites[site] = &siteState{
			cfg: cfg,
			// Mixing the site name into the seed decorrelates sites
			// armed with the same seed.
			rng: cfg.Seed ^ hashString(site),
		}
	}
	return inj, nil
}

// fire evaluates one site, injecting its fault if it rolls.
func (inj *Injector) fire(ctx context.Context, site string) error {
	s, ok := inj.sites[site]
	if !ok || !s.roll() {
		return nil
	}
	switch s.cfg.Kind {
	case KindPanic:
		panic(Panic{Site: site})
	case KindDelay:
		d := time.Duration(s.cfg.DelayNanos)
		if d <= 0 {
			d = 10 * time.Millisecond
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case KindCancel:
		return &Error{Site: site, Kind: KindCancel}
	}
	return &Error{Site: site, Kind: KindError}
}

// active is the armed injector, nil when disarmed. The atomic pointer
// is the whole disarmed cost of an injection site.
var active atomic.Pointer[Injector]

// Arm validates the plan and makes it the active injector, replacing
// any previous one.
func Arm(p Plan) error {
	inj, err := NewInjector(p)
	if err != nil {
		return err
	}
	active.Store(inj)
	return nil
}

// Disarm deactivates injection; every site becomes a no-op again.
func Disarm() { active.Store(nil) }

// Armed reports whether an injector is active.
func Armed() bool { return active.Load() != nil }

// Fire evaluates a site against the active injector. Disarmed, it
// returns nil immediately. Armed, it may return an injected error,
// stall, or panic, per the site's configuration. ctx bounds delay
// faults.
func Fire(ctx context.Context, site string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.fire(ctx, site)
}

// SiteStats is one site's counters in a Stats snapshot.
type SiteStats struct {
	Site  string  `json:"site"`
	Kind  Kind    `json:"kind"`
	P     float64 `json:"p"`
	Evals uint64  `json:"evals"`
	Fired uint64  `json:"fired"`
}

// Stats is a snapshot of the harness for /metrics.
type Stats struct {
	Armed bool        `json:"armed"`
	Sites []SiteStats `json:"sites,omitempty"`
}

// Snapshot reports the active injector's per-site counters (zero
// value when disarmed).
func Snapshot() Stats {
	inj := active.Load()
	if inj == nil {
		return Stats{}
	}
	st := Stats{Armed: true}
	for site, s := range inj.sites {
		s.mu.Lock()
		st.Sites = append(st.Sites, SiteStats{
			Site: site, Kind: s.cfg.Kind, P: s.cfg.Probability,
			Evals: s.evals, Fired: s.fired,
		})
		s.mu.Unlock()
	}
	sort.Slice(st.Sites, func(i, j int) bool { return st.Sites[i].Site < st.Sites[j].Site })
	return st
}

// IsInjected reports whether err originates from an injected fault.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}
