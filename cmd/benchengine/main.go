// Command benchengine runs the engine hot-path benchmark
// (BenchmarkRepeatedRuns) and records the results as BENCH_engine.json,
// alongside the pre-rework baseline from BENCH_repeated.json so the
// achieved speedup is part of the committed record.
//
// Benchmarks on shared, single-core CI containers are noisy: co-tenant
// load inflates wall time by 20-50% unpredictably. The tool therefore
// runs the benchmark -count times with a fixed iteration count
// (-benchtime Nx, not adaptive time-based sampling) and reports the
// MINIMUM ns/op per sub-benchmark — the run least disturbed by
// neighbors, and the only statistic that is stable under one-sided
// noise. Invoked by `make bench-engine`; CI runs a 1-iteration smoke to
// keep the target from rotting.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

type subResult struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Samples is the number of -count repetitions the minimum was
	// taken over.
	Samples int `json:"samples"`
}

type benchFile struct {
	Benchmark   string                `json:"benchmark"`
	Description string                `json:"description"`
	Date        string                `json:"date"`
	Goos        string                `json:"goos"`
	Goarch      string                `json:"goarch"`
	CPU         string                `json:"cpu"`
	Command     string                `json:"command"`
	Methodology string                `json:"methodology"`
	Results     map[string]*subResult `json:"results"`
	Baseline    *baselineRef          `json:"baseline,omitempty"`
}

type baselineRef struct {
	Source        string  `json:"source"`
	SubBench      string  `json:"sub_benchmark"`
	NsPerOp       int64   `json:"ns_per_op"`
	SpeedupFactor float64 `json:"speedup_factor"`
	Note          string  `json:"note"`
}

// benchLine matches one testing benchmark result line, e.g.
// BenchmarkRepeatedRuns/reused-simulator-4  1000  971234 ns/op  7570 B/op  74 allocs/op
var benchLine = regexp.MustCompile(
	`^Benchmark[^/\s]*/(\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	benchtime := flag.String("benchtime", "1000x", "fixed iteration count per run (testing -benchtime)")
	count := flag.Int("count", 8, "runs per sub-benchmark; the minimum is recorded")
	bench := flag.String("bench", "BenchmarkRepeatedRuns", "benchmark to run")
	out := flag.String("out", "BENCH_engine.json", "output file")
	dir := flag.String("dir", ".", "package directory containing the benchmark")
	flag.Parse()

	args := []string{"test", "-run=XXX", "-bench=" + *bench,
		"-benchtime=" + *benchtime, "-count=" + strconv.Itoa(*count), "."}
	cmd := exec.Command("go", args...)
	cmd.Dir = *dir
	var outBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchengine: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		fatal("benchmark run failed: %v", err)
	}

	f := &benchFile{
		Benchmark: *bench,
		Description: "Engine hot-path overhaul record: per-repetition simulation cost after the " +
			"calendar event queue, compiled-op dispatch, struct-of-arrays rank state, memoized " +
			"collective schedules and batched noise arrivals. Workload: minife, 64 ranks, 5 " +
			"iterations, CE noise MTBCE=50ms fixed 1ms/event, Profile enabled — identical to " +
			"BENCH_repeated.json so the two files compare directly. Outputs are bit-identical " +
			"to the pre-rework engine (TestEngineBitIdentical).",
		Date:    time.Now().UTC().Format("2006-01-02"),
		Command: "go " + strings.Join(args, " "),
		Methodology: fmt.Sprintf("min of %d runs at fixed %s iterations; minimum chosen because "+
			"co-tenant noise on shared CI hardware is strictly one-sided", *count, *benchtime),
		Results: map[string]*subResult{},
	}
	sc := bufio.NewScanner(&outBuf)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := f.Results[m[1]]
		if r == nil {
			r = &subResult{NsPerOp: int64(ns)}
			f.Results[m[1]] = r
		}
		r.Samples++
		if int64(ns) <= r.NsPerOp {
			r.NsPerOp = int64(ns)
			if m[3] != "" {
				r.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
			}
			if m[4] != "" {
				r.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			}
		}
	}
	if len(f.Results) == 0 {
		fatal("no benchmark result lines parsed from go test output")
	}

	if base := loadBaseline(*dir); base > 0 {
		if r, ok := f.Results["reused-simulator"]; ok && r.NsPerOp > 0 {
			f.Baseline = &baselineRef{
				Source:        "BENCH_repeated.json",
				SubBench:      "reused-simulator",
				NsPerOp:       base,
				SpeedupFactor: float64(base) / float64(r.NsPerOp),
				Note: "baseline measured on the pre-rework engine on comparable hardware; " +
					"speedup is baseline ns/op divided by this file's minimum ns/op",
			}
		}
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchengine: wrote %s\n", *out)
	for name, r := range f.Results {
		fmt.Fprintf(os.Stderr, "  %-24s min %d ns/op (%d B/op, %d allocs/op, %d samples)\n",
			name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Samples)
	}
	if f.Baseline != nil {
		fmt.Fprintf(os.Stderr, "  speedup vs %s: %.2fx\n", f.Baseline.Source, f.Baseline.SpeedupFactor)
	}
}

// loadBaseline pulls the pre-rework reused-simulator ns/op out of
// BENCH_repeated.json, if present next to the benchmark package.
func loadBaseline(dir string) int64 {
	raw, err := os.ReadFile(dir + "/BENCH_repeated.json")
	if err != nil {
		return 0
	}
	var doc struct {
		Results map[string]struct {
			NsPerOp int64 `json:"ns_per_op"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0
	}
	return doc.Results["reused-simulator"].NsPerOp
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchengine: "+format+"\n", args...)
	os.Exit(1)
}
