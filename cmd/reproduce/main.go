// reproduce regenerates the paper's entire evaluation — Table II and
// Figures 2 through 7 — into an output directory, with each result in
// aligned-text, CSV and JSON forms plus a manifest recording scales,
// seeds and wall times.
//
//	reproduce -out results                  # reduced scale, ~minutes
//	reproduce -out results -scale paper     # Table II node counts, hours
//	reproduce -out results -only 5,7        # a subset of figures
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/core"
)

func main() {
	var (
		out   = flag.String("out", "results", "output directory")
		scale = flag.String("scale", "reduced", "reduced or paper")
		nodes = flag.Int("nodes", 0, "reduced-scale node count override")
		iters = flag.Int("iters", 0, "iterations override")
		reps  = flag.Int("reps", 0, "repetitions override")
		seed  = flag.Uint64("seed", 1, "base seed")
		only  = flag.String("only", "", "comma-separated subset of {2,3,4,5,6,7}")
		atURL = flag.String("cluster", "", "coordinator URL: run the sweep figures on a cesimd cluster")
	)
	flag.Parse()

	opts := core.Options{Nodes: *nodes, Iterations: *iters, Reps: *reps, Seed: *seed}
	switch *scale {
	case "reduced":
	case "paper":
		opts.Scale = core.Paper
	default:
		fatal(fmt.Errorf("reproduce: unknown scale %q", *scale))
	}
	cfg := campaign.Config{OutDir: *out, Options: opts, Log: os.Stderr}
	if *only != "" {
		cfg.Only = strings.Split(*only, ",")
	}
	if *atURL != "" {
		// Figures 3-9 shard across the cluster; Table II and Figure 2
		// still run locally. Output stays byte-identical either way.
		cfg.Runner = &cluster.Client{Base: *atURL}
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if err := res.Manifest.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
