// cesimd serves the CE-overhead simulator as an always-on HTTP/JSON
// service: a bounded job queue and worker pool execute simulate and
// sweep requests, a content-addressed cache memoizes noise-free
// baselines across requests, and /metrics exposes counters, latency
// histograms and cache effectiveness. See docs/SERVICE.md for the API.
//
// Examples:
//
//	cesimd -addr :8080
//	cesimd -addr :8080 -workers 4 -queue 128 -cache-mb 512 -job-timeout 10m
//	cesimd -allow-fault-injection -faults faults.json   # chaos drills only
//
// Cluster mode (see docs/CLUSTER.md): a coordinator shards campaign
// sweeps across joined workers and merges results bit-identically to a
// single-node run.
//
//	cesimd -addr :8080 -role coordinator
//	cesimd -addr :8081 -role worker -join http://coordinator:8080
//
//	curl -s localhost:8080/v1/systems | jq .
//	curl -s -X POST localhost:8080/v1/simulate -d \
//	  '{"workload":"lulesh","nodes":512,"system":"exascale-cielo-x10","mode":"firmware-emca"}'
//
// With -data-dir the daemon is durable (docs/DURABILITY.md): submitted
// jobs are journaled to a write-ahead log and re-enqueued under their
// original ids after a crash, sweep results persist in a
// content-addressed store, and a coordinator recovers its sweeps from
// a journal on restart, re-offering only unfinished cells.
//
//	cesimd -addr :8080 -data-dir /var/lib/cesimd
//	cesimd -addr :8080 -data-dir /var/lib/cesimd -tenant-rate 5 -tenant-disk-mb 256
//
// SIGINT/SIGTERM drain gracefully: the listener stops, queued and
// running jobs finish (up to -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/advise"
	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/simcache"
	"repro/internal/tenant"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "job worker pool size (0 = GOMAXPROCS)")
		simWorkers   = flag.Int("sim-workers", 0, "per-job simulation fan-out (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "bounded queue capacity (submissions beyond it get 429)")
		jobTimeout   = flag.Duration("job-timeout", 15*time.Minute, "per-job deadline (0 = none)")
		retain       = flag.Int("retain", 512, "finished jobs kept for polling")
		cacheMB      = flag.Int("cache-mb", 256, "baseline cache bound in MiB")
		maxNodes     = flag.Int("max-nodes", 16384, "largest accepted node count")
		maxReps      = flag.Int("max-reps", 64, "largest accepted repetition count")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "shutdown grace for in-flight jobs")
		jobRetries   = flag.Int("job-retries", 2, "per-job retry budget for retryable failures (negative = none)")
		shedMark     = flag.Int("shed-watermark", 0, "queue depth at which new submissions get 503 (0 = disabled)")
		faultsPath   = flag.String("faults", "", "fault-injection plan (JSON); requires -allow-fault-injection")
		allowFaults  = flag.Bool("allow-fault-injection", false, "permit -faults (chaos drills; never in production)")
		advisor      = flag.Bool("advisor", true, "mount the mitigation advisor (/v1/advise, docs/ADVISOR.md)")
		advTenants   = flag.Int("advise-tenants", 1024, "advisor: max distinct tenants tracked")
		advNodes     = flag.Int("advise-nodes-per-tenant", 4096, "advisor: max tracked nodes per tenant")
		advBatch     = flag.Int("advise-batch", 10000, "advisor: max events per ingest batch")
		advCache     = flag.Int("advise-cache", 1024, "advisor: recommendation cache entries (negative = disabled)")
		advHalfLife  = flag.Duration("advise-half-life", 4*time.Hour, "advisor: estimator decay half-life")

		dataDir      = flag.String("data-dir", "", "durable state directory (job WAL, result store, coordinator journal; empty = in-memory only, docs/DURABILITY.md)")
		tenantRate   = flag.Float64("tenant-rate", 0, "per-tenant sustained submissions/sec (0 = unlimited)")
		tenantBurst  = flag.Int("tenant-burst", 0, "per-tenant submission burst (0 = derived from -tenant-rate)")
		tenantJobs   = flag.Int("tenant-jobs", 0, "per-tenant in-flight job cap (0 = unlimited)")
		tenantDiskMB = flag.Int("tenant-disk-mb", 0, "per-tenant result-store footprint cap in MiB (0 = unlimited)")

		role       = flag.String("role", "standalone", "cluster role: standalone, coordinator, or worker")
		join       = flag.String("join", "", "coordinator URL to join (requires -role worker)")
		leaseTTL   = flag.Duration("lease-ttl", 10*time.Second, "coordinator: shard lease TTL (heartbeat deadline)")
		stealAfter = flag.Duration("steal-after", 2*time.Second, "coordinator: how long a shard waits for its preferred worker")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "cesimd: ", log.LstdFlags)

	switch *role {
	case "", "standalone", "coordinator", "worker":
	default:
		logger.Fatalf("unknown -role %q (want standalone, coordinator or worker)", *role)
	}
	if *role == "worker" && *join == "" {
		logger.Fatal("-role worker requires -join <coordinator URL>")
	}
	if *role != "worker" && *join != "" {
		logger.Fatal("-join requires -role worker")
	}

	// Fault injection is opt-in twice over: the plan flag alone is an
	// error so a stray -faults can't chaos a production instance.
	if *faultsPath != "" && !*allowFaults {
		logger.Fatal("-faults requires -allow-fault-injection")
	}
	if *allowFaults && *faultsPath != "" {
		plan, err := faultinject.LoadPlan(*faultsPath)
		if err != nil {
			logger.Fatal(err)
		}
		if err := faultinject.Arm(plan); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("FAULT INJECTION ARMED from %s (%d sites) — results serve degraded-path drills, not production", *faultsPath, len(plan))
	}

	// The durable tier (docs/DURABILITY.md): a job WAL so a killed
	// daemon re-enqueues unfinished work, a content-addressed result
	// store so repeated sweeps re-serve stored bytes verbatim, and (for
	// a coordinator) a sweep journal so a restart re-offers only
	// unfinished cells. All three live under -data-dir and are absent
	// without it.
	var (
		jobWAL      *journal.Writer
		store       *simcache.Store
		pendingJobs []jobs.PendingJob
		walStats    journal.ReplayStats
	)
	if *dataDir != "" {
		walDir := filepath.Join(*dataDir, "jobs-wal")
		var err error
		// Replay strictly before opening the writer: a crash's torn
		// tail must be discovered while the damaged segment is still the
		// log's last — opening first would mint a new segment above it
		// and make the tail look like mid-log damage.
		pendingJobs, walStats, err = jobs.Recover(context.Background(), walDir)
		if err != nil {
			logger.Fatal(err)
		}
		jobWAL, err = journal.Open(walDir, journal.Options{})
		if err != nil {
			logger.Fatal(err)
		}
		store, err = simcache.OpenStore(filepath.Join(*dataDir, "store"))
		if err != nil {
			logger.Fatal(err)
		}
		ss := store.Stats()
		logger.Printf("result store: %d entries (%d bytes), %d quarantined at scan", ss.Entries, ss.SizeBytes, ss.Quarantined)
	}

	jobsCfg := jobs.Config{
		Workers:  *workers,
		Capacity: *queueDepth,
		Timeout:  *jobTimeout,
		Retain:   *retain,
		Log:      logger,
	}
	if jobWAL != nil {
		jobsCfg.Journal = jobWAL
	}
	queue := jobs.New(jobsCfg)
	cache := simcache.New(int64(*cacheMB) << 20)

	var tenants *tenant.Registry
	if *tenantRate > 0 || *tenantJobs > 0 || *tenantDiskMB > 0 {
		tenants = tenant.New(tenant.Config{Defaults: tenant.Limits{
			RatePerSec: *tenantRate,
			Burst:      *tenantBurst,
			MaxJobs:    *tenantJobs,
			DiskBytes:  int64(*tenantDiskMB) << 20,
		}})
	}

	// A coordinator mounts the cluster endpoints through the same
	// middleware stack as the simulate/sweep API, so shed, metrics and
	// request-id stamping apply to lease traffic too. With -data-dir it
	// recovers its sweeps from the journal and opens a new epoch.
	var routes map[string]http.HandlerFunc
	var coord *cluster.Coordinator
	if *role == "coordinator" {
		ccfg := cluster.Config{
			LeaseTTL:   *leaseTTL,
			StealAfter: *stealAfter,
		}
		if *dataDir != "" {
			var rst journal.ReplayStats
			var err error
			coord, rst, err = cluster.OpenCoordinator(context.Background(), ccfg, filepath.Join(*dataDir, "cluster-wal"))
			if err != nil {
				logger.Fatal(err)
			}
			logger.Printf("coordinator recovered: %d journal records (%d quarantined segments), epoch %d",
				rst.Records, rst.Quarantined, coord.Epoch())
		} else {
			coord = cluster.NewCoordinator(ccfg)
		}
		routes = coord.Routes()
	}

	// The advisor is on by default: it holds only bounded in-memory
	// state and costs nothing until the first ingest.
	var adv *advise.Service
	if *advisor {
		adv = advise.NewService(advise.Config{
			Store: advise.StoreConfig{
				Estimator:         advise.EstimatorConfig{HalfLifeNanos: advHalfLife.Nanoseconds()},
				MaxTenants:        *advTenants,
				MaxNodesPerTenant: *advNodes,
			},
			MaxBatchEvents: *advBatch,
			CacheEntries:   *advCache,
		})
	}

	srv, err := server.New(server.Config{
		Queue:         queue,
		Cache:         cache,
		SimWorkers:    *simWorkers,
		MaxNodes:      *maxNodes,
		MaxReps:       *maxReps,
		JobRetries:    *jobRetries,
		ShedWatermark: *shedMark,
		Advisor:       adv,
		Routes:        routes,
		ResultStore:   store,
		Tenants:       tenants,
		Journal:       jobWAL,
		Log:           logger,
	})
	if err != nil {
		logger.Fatal(err)
	}

	// Re-enqueue journaled jobs that never reached a terminal state,
	// under their original ids, before the listener opens — a client
	// polling a pre-crash job id finds its job again. The acceptances
	// re-journal through the new writer, after which the whole live set
	// lives in the new segments and the pre-restart ones are compacted
	// away (the WAL stays bounded by live state, not restart count).
	if *dataDir != "" {
		n := srv.Resubmit(pendingJobs)
		logger.Printf("job WAL: recovered %d unfinished jobs (%d records, %d quarantined segments, torn tail=%v)",
			n, walStats.Records, walStats.Quarantined, walStats.TornTail)
		if err := jobWAL.Sync(context.Background()); err != nil {
			logger.Printf("job WAL sync: %v (keeping pre-restart segments)", err)
		} else if st := queue.Stats(); st.WALErrors > 0 {
			logger.Printf("job WAL: %d append errors during recovery, keeping pre-restart segments", st.WALErrors)
		} else if removed, err := jobWAL.CompactBefore(); err != nil {
			logger.Printf("job WAL compact: %v", err)
		} else if removed > 0 {
			logger.Printf("job WAL: compacted %d pre-restart segments", removed)
		}
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// A worker joins the coordinator and pulls shard leases alongside
	// its local API; both share the queue and baseline cache, so
	// consistent-hash placement delivers warm cache hits.
	var workerDone chan struct{}
	if *role == "worker" {
		cw, err := cluster.NewWorker(cluster.WorkerConfig{
			Coordinator: *join,
			Addr:        *addr,
			Queue:       queue,
			Cache:       cache,
			Log:         logger,
		})
		if err != nil {
			logger.Fatal(err)
		}
		workerDone = make(chan struct{})
		go func() {
			defer close(workerDone)
			if err := cw.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				logger.Printf("cluster worker stopped: %v", err)
			}
			st := cw.Stats()
			logger.Printf("cluster worker %s: %d shards done, %d failed, %d leases lost",
				st.ID, st.ShardsDone, st.ShardsFailed, st.LeasesLost)
		}()
	}

	serveErr := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (queue=%d, cache=%d MiB, job-timeout=%s)",
			*addr, *queueDepth, *cacheMB, *jobTimeout)
		serveErr <- hs.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		// Listen failure (e.g. port in use): nothing to drain.
		logger.Fatal(err)
	case <-ctx.Done():
	}

	logger.Printf("signal received, draining (grace %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if workerDone != nil {
		<-workerDone // lease loop exits before the queue drains
	}
	if err := hs.Shutdown(dctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := queue.Drain(dctx); err != nil {
		logger.Printf("queue drain: %v (abandoning in-flight jobs)", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
	}
	if coord != nil {
		if err := coord.Close(); err != nil {
			logger.Printf("coordinator journal close: %v", err)
		}
	}
	if jobWAL != nil {
		if err := jobWAL.Close(); err != nil {
			logger.Printf("job WAL close: %v", err)
		}
	}

	st := queue.Stats()
	cs := cache.Stats()
	logger.Printf("done: %d jobs (%d ok, %d failed, %d canceled, %d retries, %d panics recovered), cache hit ratio %s",
		st.Submitted, st.Succeeded, st.Failed, st.Canceled, st.Retries, st.PanicsRecovered,
		fmt.Sprintf("%.2f", cs.HitRatio))
}
