// cesimd serves the CE-overhead simulator as an always-on HTTP/JSON
// service: a bounded job queue and worker pool execute simulate and
// sweep requests, a content-addressed cache memoizes noise-free
// baselines across requests, and /metrics exposes counters, latency
// histograms and cache effectiveness. See docs/SERVICE.md for the API.
//
// Examples:
//
//	cesimd -addr :8080
//	cesimd -addr :8080 -workers 4 -queue 128 -cache-mb 512 -job-timeout 10m
//
//	curl -s localhost:8080/v1/systems | jq .
//	curl -s -X POST localhost:8080/v1/simulate -d \
//	  '{"workload":"lulesh","nodes":512,"system":"exascale-cielo-x10","mode":"firmware-emca"}'
//
// SIGINT/SIGTERM drain gracefully: the listener stops, queued and
// running jobs finish (up to -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/simcache"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "job worker pool size (0 = GOMAXPROCS)")
		simWorkers   = flag.Int("sim-workers", 0, "per-job simulation fan-out (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "bounded queue capacity (submissions beyond it get 429)")
		jobTimeout   = flag.Duration("job-timeout", 15*time.Minute, "per-job deadline (0 = none)")
		retain       = flag.Int("retain", 512, "finished jobs kept for polling")
		cacheMB      = flag.Int("cache-mb", 256, "baseline cache bound in MiB")
		maxNodes     = flag.Int("max-nodes", 16384, "largest accepted node count")
		maxReps      = flag.Int("max-reps", 64, "largest accepted repetition count")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "shutdown grace for in-flight jobs")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "cesimd: ", log.LstdFlags)

	queue := jobs.New(jobs.Config{
		Workers:  *workers,
		Capacity: *queueDepth,
		Timeout:  *jobTimeout,
		Retain:   *retain,
	})
	cache := simcache.New(int64(*cacheMB) << 20)
	srv, err := server.New(server.Config{
		Queue:      queue,
		Cache:      cache,
		SimWorkers: *simWorkers,
		MaxNodes:   *maxNodes,
		MaxReps:    *maxReps,
	})
	if err != nil {
		logger.Fatal(err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (queue=%d, cache=%d MiB, job-timeout=%s)",
			*addr, *queueDepth, *cacheMB, *jobTimeout)
		serveErr <- hs.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		// Listen failure (e.g. port in use): nothing to drain.
		logger.Fatal(err)
	case <-ctx.Done():
	}

	logger.Printf("signal received, draining (grace %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := queue.Drain(dctx); err != nil {
		logger.Printf("queue drain: %v (abandoning in-flight jobs)", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
	}

	st := queue.Stats()
	cs := cache.Stats()
	logger.Printf("done: %d jobs (%d ok, %d failed, %d canceled), cache hit ratio %s",
		st.Submitted, st.Succeeded, st.Failed, st.Canceled, fmt.Sprintf("%.2f", cs.HitRatio))
}
