package main

// Kill-and-restart acceptance at process scope (make crash-smoke):
// a real cesimd binary is SIGKILLed mid-work and restarted over the
// same -data-dir, and the recovered results must be byte-identical to
// a direct in-process computation. Two scenarios: a standalone daemon
// killed with a journaled sweep in flight, and a cluster coordinator
// killed mid-sweep with a live worker attached.

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// buildDaemon compiles cesimd into a temp dir once per test.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cesimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("build cesimd: %v", err)
	}
	return bin
}

// freeAddr reserves and releases a loopback port. Go listeners set
// SO_REUSEADDR, so the restarted daemon can re-bind it immediately.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches the binary and registers a hard-kill cleanup
// for the test-failure path.
func startDaemon(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	return cmd
}

// sigkill delivers the crash under test: SIGKILL, no drain, no
// journal close.
func sigkill(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()
}

// waitHealthy polls the daemon's metrics endpoint until it answers.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon at %s never became healthy: %v", base, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func postJSONBody(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

// crashOpts sizes the sweep so the SIGKILL reliably lands mid-flight
// while recomputation stays test-sized.
func crashOpts(workloads []string) core.Options {
	return core.Options{Nodes: 256, Iterations: 5, Reps: 2, Seed: 1,
		Workloads: workloads, Scale: core.Reduced}
}

// wantFigure4 computes the sequential ground truth for crashOpts.
func wantFigure4(t *testing.T, workloads []string) []byte {
	t.Helper()
	fig, err := core.Figure4(crashOpts(workloads))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return compactJSON(t, buf.Bytes())
}

// compactJSON strips transport re-indentation so figure bytes compare
// canonically. Number tokens pass through verbatim, so any value
// divergence still fails the bit-identity check.
func compactJSON(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatalf("compact: %v (%.120s)", err, b)
	}
	return buf.Bytes()
}

// TestCrashSmokeStandalone kills a standalone daemon right after it
// accepts a sweep job. The restarted daemon must re-enqueue the job
// under its original id from the WAL and finish it with bytes equal to
// the direct computation.
func TestCrashSmokeStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash smoke skipped in -short")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	daemon := startDaemon(t, bin, "-addr", addr, "-data-dir", dataDir)
	waitHealthy(t, base)

	sweep := map[string]any{"figure": "4", "nodes": 256, "iters": 5, "reps": 2,
		"seed": 1, "workloads": []string{"minife"}}
	var sub struct {
		ID string `json:"id"`
	}
	if code := postJSONBody(t, base+"/v1/sweep", sweep, &sub); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	// The acceptance record hit the WAL before the 202; kill now, with
	// the job in flight.
	sigkill(t, daemon)

	startDaemon(t, bin, "-addr", addr, "-data-dir", dataDir)
	waitHealthy(t, base)

	var snap struct {
		State  string          `json:"state"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if code == http.StatusNotFound {
			t.Fatalf("job %s lost across the crash", sub.ID)
		}
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == "succeeded" || snap.State == "failed" || snap.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in %q", snap.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if snap.State != "succeeded" {
		t.Fatalf("recovered job %s: %s", snap.State, snap.Error)
	}
	got := compactJSON(t, snap.Result)
	if want := wantFigure4(t, []string{"minife"}); !bytes.Equal(got, want) {
		t.Fatalf("recovered sweep result differs from direct computation\n got: %.300s\nwant: %.300s", got, want)
	}
}

// TestCrashSmokeCoordinator kills a durable coordinator after its
// worker finishes the first of two cells. The restarted coordinator
// must recover the sweep from its journal, re-offer only the
// unfinished cell to the (re-registering) worker, and merge a figure
// byte-identical to the sequential driver.
func TestCrashSmokeCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash smoke skipped in -short")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	coordAddr := freeAddr(t)
	workerAddr := freeAddr(t)
	base := "http://" + coordAddr

	coord := startDaemon(t, bin, "-addr", coordAddr, "-role", "coordinator", "-data-dir", dataDir)
	waitHealthy(t, base)
	startDaemon(t, bin, "-addr", workerAddr, "-role", "worker", "-join", base)

	spec := map[string]any{"figures": []string{"4"}, "nodes": 256, "iters": 5,
		"reps": 2, "seed": 1, "workloads": []string{"minife", "hpcg"}}
	var created struct {
		ID     string `json:"id"`
		Shards int    `json:"shards"`
	}
	if code := postJSONBody(t, base+"/cluster/sweep", spec, &created); code != http.StatusAccepted || created.Shards != 2 {
		t.Fatalf("create sweep: http %d (%+v)", code, created)
	}

	type sweepView struct {
		State   string                     `json:"state"`
		Done    int                        `json:"done"`
		Error   string                     `json:"error"`
		Figures map[string]json.RawMessage `json:"figures"`
	}
	getSweep := func() (sweepView, int) {
		var v sweepView
		resp, err := http.Get(base + "/cluster/sweep/" + created.ID)
		if err != nil {
			return v, 0 // restart window: connection refused
		}
		defer resp.Body.Close()
		_ = json.NewDecoder(resp.Body).Decode(&v)
		return v, resp.StatusCode
	}

	// Wait for the first cell, then crash the coordinator mid-sweep.
	deadline := time.Now().Add(120 * time.Second)
	for {
		if v, code := getSweep(); code == http.StatusOK && v.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first shard never completed")
		}
		time.Sleep(25 * time.Millisecond)
	}
	sigkill(t, coord)

	startDaemon(t, bin, "-addr", coordAddr, "-role", "coordinator", "-data-dir", dataDir)
	waitHealthy(t, base)

	deadline = time.Now().Add(180 * time.Second)
	var final sweepView
	for {
		v, code := getSweep()
		if code == http.StatusNotFound {
			t.Fatalf("sweep %s lost across the crash", created.ID)
		}
		if code == http.StatusOK && v.State != "running" {
			final = v
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered sweep stuck: %+v", v)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if final.State != "done" {
		t.Fatalf("recovered sweep %s: %s", final.State, final.Error)
	}
	if !bytes.Equal(compactJSON(t, final.Figures["4"]), wantFigure4(t, []string{"minife", "hpcg"})) {
		t.Fatal("recovered merge differs from the sequential driver")
	}
}
