// advisor turns the paper's analysis into prescriptive guidance: given
// a logging mode, machine size and workload, how unreliable may the
// DRAM be (minimum MTBCE per node, maximum CEs/GiB/year) before CE
// logging costs more than an overhead budget?
//
// This is the paper's conclusion quantified: "If Firmware First CE
// reporting is used on future systems, the MTBCE(node) for an exascale
// system should not drop below 5,544-3,024 seconds".
//
// Examples:
//
//	advisor -mode firmware-emca -nodes 16384 -gib 700 -budget 10
//	advisor -mode software-cmci -workload hpcg -nodes 16384 -gib 700
//	advisor -perevent 7ms -workload lulesh -nodes 4096 -gib 512 -budget 5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/systems"
	"repro/internal/tracegen"
)

func main() {
	var (
		mode     = flag.String("mode", "firmware-emca", "logging mode (hardware-only, software-cmci, firmware-emca)")
		perEvent = flag.Duration("perevent", 0, "explicit per-CE handling time (overrides -mode)")
		workload = flag.String("workload", "lulesh", "workload whose synchronization cadence to assume")
		nodes    = flag.Int("nodes", 16384, "machine size in nodes")
		gib      = flag.Float64("gib", 700, "DRAM GiB per node (for the CE/GiB/year conversion)")
		budget   = flag.Float64("budget", 10, "acceptable slowdown in percent")
	)
	flag.Parse()

	perEventNanos := int64(*perEvent)
	if perEventNanos == 0 {
		m, err := systems.LoggingModeByName(*mode)
		if err != nil {
			fatal(err)
		}
		perEventNanos = m.PerEventNanos
	}
	spec, err := tracegen.Lookup(*workload)
	if err != nil {
		fatal(err)
	}
	sync := predict.SyncInterval(spec)

	res, err := predict.Budget(*nodes, perEventNanos, sync, *budget, *gib)
	if err != nil {
		fatal(err)
	}

	t := report.New(fmt.Sprintf("advisor: %s on %d nodes, %s cadence, %.0f%% budget",
		*workload, *nodes, report.Nanos(sync), *budget),
		"metric", "value")
	t.AddRow("per-event-cost", report.Nanos(perEventNanos))
	t.AddRow("min-mtbce-node", report.Nanos(res.MinMTBCENanos))
	t.AddRow("max-ce/node/year", fmt.Sprintf("%.1f", res.MaxCEPerNodeYear))
	t.AddRow("max-ce/gib/year", fmt.Sprintf("%.2f", res.MaxCEPerGiBYear))
	t.AddRow("vs-cielo-rate", fmt.Sprintf("%.1fx", res.VsCielo))
	if err := t.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}

	fmt.Println()
	t2 := report.New("Table II systems against this requirement", "system", "mtbce-node", "verdict")
	mtbceSec := float64(res.MinMTBCENanos) / 1e9
	for _, s := range systems.Simulated() {
		verdict := "OK"
		if s.MTBCESeconds < mtbceSec {
			verdict = fmt.Sprintf("exceeds budget (needs >= %.0fs)", mtbceSec)
		}
		t2.AddRow(s.Name, fmt.Sprintf("%.1fs", s.MTBCESeconds), verdict)
	}
	if err := t2.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
