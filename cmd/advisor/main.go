// advisor turns the paper's analysis into prescriptive guidance: given
// a machine size, workload and overhead budget, how unreliable may the
// DRAM be (minimum MTBCE per node, maximum CEs/GiB/year) under each CE
// logging mode — and, when an observed MTBCE is supplied, which mode,
// page-retirement setting and checkpoint interval to run with.
//
// This is the paper's conclusion quantified: "If Firmware First CE
// reporting is used on future systems, the MTBCE(node) for an exascale
// system should not drop below 5,544-3,024 seconds".
//
// The same policy engine powers GET /v1/advise/recommend on cesimd;
// -json emits the identical machine-readable Recommendation struct
// (docs/ADVISOR.md).
//
// Examples:
//
//	advisor -mode firmware-emca -nodes 16384 -gib 700 -budget 10
//	advisor -workload hpcg -nodes 16384 -gib 700 -mtbce 1h -fault row
//	advisor -perevent 7ms -workload lulesh -nodes 4096 -gib 512 -budget 5
//	advisor -nodes 16384 -mtbce 90m -json | jq .recommended_mode
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/advise"
	"repro/internal/report"
	"repro/internal/retire"
	"repro/internal/systems"
	"repro/internal/tracegen"
)

func main() {
	var (
		mode     = flag.String("mode", "firmware-emca", "logging mode the Table II verdicts assume (hardware-only, software-cmci, firmware-emca)")
		perEvent = flag.Duration("perevent", 0, "explicit per-CE handling time (replaces the catalog modes)")
		workload = flag.String("workload", "lulesh", "workload whose synchronization cadence to assume")
		nodes    = flag.Int("nodes", 16384, "machine size in nodes")
		gib      = flag.Float64("gib", 700, "DRAM GiB per node (for the CE/GiB/year conversion)")
		budget   = flag.Float64("budget", 10, "acceptable slowdown in percent")
		mtbce    = flag.Duration("mtbce", 0, "observed per-node MTBCE (enables the recommendation, retirement and checkpoint sections)")
		fault    = flag.String("fault", "", "classified fault mode for retirement advice (cell, row, column, bank)")
		jsonOut  = flag.Bool("json", false, "emit the machine-readable recommendation (same struct as GET /v1/advise/recommend)")
	)
	flag.Parse()

	if err := validateFlags(*mode, *workload, *fault, *nodes, *gib, *budget, *perEvent, *mtbce); err != nil {
		fatal(err)
	}

	in := advise.Inputs{
		Workload:           *workload,
		Nodes:              *nodes,
		BudgetPct:          *budget,
		GiBPerNode:         *gib,
		PerEventNanos:      int64(*perEvent),
		ObservedMTBCENanos: int64(*mtbce),
	}
	if *fault != "" {
		kind, err := retire.ParseKind(*fault)
		if err != nil {
			fatal(err) // unreachable: validateFlags vetted it
		}
		// Operator-asserted fault mode: full confidence.
		in.FaultKnown = true
		in.Fault = kind
		in.FaultConfidence = 1
	}

	rec, err := advise.Advise(in)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fatal(err)
		}
		return
	}
	if err := render(os.Stdout, rec, *mode, *perEvent != 0); err != nil {
		fatal(err)
	}
}

// validateFlags rejects bad parameters before any work happens, so a
// typo fails fast with a targeted message instead of surfacing from
// deep inside the policy engine.
func validateFlags(mode, workload, fault string, nodes int, gib, budget float64, perEvent, mtbce time.Duration) error {
	if nodes <= 0 {
		return fmt.Errorf("advisor: -nodes must be positive, got %d", nodes)
	}
	if gib <= 0 {
		return fmt.Errorf("advisor: -gib must be positive, got %v", gib)
	}
	if budget <= 0 {
		return fmt.Errorf("advisor: -budget must be positive, got %v", budget)
	}
	if perEvent < 0 {
		return fmt.Errorf("advisor: -perevent must be non-negative, got %v", perEvent)
	}
	if mtbce < 0 {
		return fmt.Errorf("advisor: -mtbce must be non-negative, got %v", mtbce)
	}
	if perEvent == 0 {
		if _, err := systems.LoggingModeByName(mode); err != nil {
			return fmt.Errorf("advisor: -mode: %v", err)
		}
	}
	if fault != "" {
		if _, err := retire.ParseKind(fault); err != nil {
			return fmt.Errorf("advisor: -fault: %v", err)
		}
	}
	if _, err := tracegen.Lookup(workload); err != nil {
		return fmt.Errorf("advisor: -workload: %v", err)
	}
	return nil
}

// render writes the human-readable tables. verdictMode names the
// logging mode the Table II verdict table assumes ("custom" when an
// explicit per-event cost replaced the catalog).
func render(w *os.File, rec *advise.Recommendation, verdictMode string, custom bool) error {
	t := report.New(fmt.Sprintf("advisor: %s on %d nodes, %s cadence, %.0f%% budget",
		rec.Workload, rec.Nodes, report.Nanos(rec.SyncIntervalNanos), rec.BudgetPct),
		"mode", "per-event", "min-mtbce-node", "max-ce/node/yr", "max-ce/gib/yr", "vs-cielo", "verdict")
	for _, m := range rec.Modes {
		verdict := ""
		if !m.Feasible {
			verdict = "infeasible at any CE rate"
		} else if m.Satisfied != nil {
			if *m.Satisfied {
				verdict = "observed MTBCE clears floor"
			} else {
				verdict = "observed MTBCE below floor"
			}
		}
		t.AddRow(m.Mode, report.Nanos(m.PerEventNanos), report.Nanos(m.MinMTBCENanos),
			fmt.Sprintf("%.1f", m.MaxCEPerNodeYear), fmt.Sprintf("%.2f", m.MaxCEPerGiBYear),
			fmt.Sprintf("%.1fx", m.VsCielo), verdict)
	}
	if err := t.WriteASCII(w); err != nil {
		return err
	}

	if rec.ObservedMTBCENanos > 0 {
		fmt.Fprintf(w, "\nobserved MTBCE %s -> recommended mode: %s\n",
			report.Nanos(rec.ObservedMTBCENanos), rec.RecommendedMode)
		if r := rec.Retirement; r != nil {
			fmt.Fprintf(w, "page retirement: worth=%t (%s)\n", r.Worth, r.Reason)
		}
		if c := rec.Checkpoint; c != nil {
			fmt.Fprintf(w, "checkpointing: system MTBF %s -> Daly interval %s (overhead %.1f%%)\n",
				report.Nanos(c.SystemMTBFNanos), report.Nanos(c.DalyNanos), c.OverheadPct)
		}
	}

	if custom {
		verdictMode = "custom"
	}
	var floor int64
	feasible := false
	for _, m := range rec.Modes {
		if m.Mode == verdictMode {
			floor, feasible = m.MinMTBCENanos, m.Feasible
		}
	}
	fmt.Fprintln(w)
	t2 := report.New(fmt.Sprintf("Table II systems against the %s requirement", verdictMode),
		"system", "mtbce-node", "verdict")
	mtbceSec := float64(floor) / 1e9
	for _, s := range systems.Simulated() {
		verdict := "OK"
		switch {
		case !feasible:
			verdict = "infeasible mode"
		case s.MTBCESeconds < mtbceSec:
			verdict = fmt.Sprintf("exceeds budget (needs >= %.0fs)", mtbceSec)
		}
		t2.AddRow(s.Name, fmt.Sprintf("%.1fs", s.MTBCESeconds), verdict)
	}
	return t2.WriteASCII(w)
}

func fatal(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "advisor: ") {
		msg = "advisor: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
