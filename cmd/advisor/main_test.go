package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/advise"
)

func TestValidateFlagsRejectsBadInputs(t *testing.T) {
	ok := func() (string, string, string, int, float64, float64, time.Duration, time.Duration) {
		return "firmware-emca", "lulesh", "", 16384, 700, 10, 0, 0
	}
	cases := []struct {
		name     string
		mutate   func(*string, *string, *string, *int, *float64, *float64, *time.Duration, *time.Duration)
		wantFrag string
	}{
		{"zero nodes", func(m, w, f *string, n *int, g, b *float64, p, o *time.Duration) { *n = 0 }, "-nodes"},
		{"negative nodes", func(m, w, f *string, n *int, g, b *float64, p, o *time.Duration) { *n = -4 }, "-nodes"},
		{"zero gib", func(m, w, f *string, n *int, g, b *float64, p, o *time.Duration) { *g = 0 }, "-gib"},
		{"negative budget", func(m, w, f *string, n *int, g, b *float64, p, o *time.Duration) { *b = -1 }, "-budget"},
		{"unknown mode", func(m, w, f *string, n *int, g, b *float64, p, o *time.Duration) { *m = "telepathy" }, "-mode"},
		{"unknown workload", func(m, w, f *string, n *int, g, b *float64, p, o *time.Duration) { *w = "doom" }, "-workload"},
		{"unknown fault", func(m, w, f *string, n *int, g, b *float64, p, o *time.Duration) { *f = "gremlin" }, "-fault"},
		{"negative perevent", func(m, w, f *string, n *int, g, b *float64, p, o *time.Duration) { *p = -time.Second }, "-perevent"},
		{"negative mtbce", func(m, w, f *string, n *int, g, b *float64, p, o *time.Duration) { *o = -time.Second }, "-mtbce"},
	}
	for _, tc := range cases {
		mode, workload, fault, nodes, gib, budget, perEvent, mtbce := ok()
		tc.mutate(&mode, &workload, &fault, &nodes, &gib, &budget, &perEvent, &mtbce)
		err := validateFlags(mode, workload, fault, nodes, gib, budget, perEvent, mtbce)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantFrag) {
			t.Errorf("%s: error %q does not name the flag %q", tc.name, err, tc.wantFrag)
		}
	}
}

func TestValidateFlagsAccepts(t *testing.T) {
	cases := []struct {
		name        string
		mode, wl, f string
		perEvent    time.Duration
	}{
		{"catalog mode", "firmware-emca", "lulesh", "", 0},
		{"explicit perevent ignores mode", "not-a-mode-but-unused", "hpcg", "", 7 * time.Millisecond},
		{"fault kinds", "software-cmci", "milc", "row", 0},
	}
	for _, tc := range cases {
		if err := validateFlags(tc.mode, tc.wl, tc.f, 1024, 512, 5, tc.perEvent, time.Hour); err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
	}
}

// TestJSONOutputMatchesEngine: the -json path emits exactly what
// advise.Advise computes — the same struct the service endpoint
// serves — so scripts can consume either interchangeably.
func TestJSONOutputMatchesEngine(t *testing.T) {
	in := advise.Inputs{
		Workload: "lulesh", Nodes: 4096, BudgetPct: 10, GiBPerNode: 512,
		ObservedMTBCENanos: int64(2 * time.Hour),
	}
	rec, err := advise.Advise(in)
	if err != nil {
		t.Fatal(err)
	}
	if rec.RecommendedMode == "" || len(rec.Modes) != 3 {
		t.Fatalf("engine output unusable for the CLI: %+v", rec)
	}
	if rec.Estimate != nil {
		t.Fatal("offline evaluation must not fabricate a node estimate")
	}
}
