// tracegen generates, inspects, extrapolates and converts workload
// traces.
//
// Examples:
//
//	tracegen -list
//	tracegen -workload lulesh -nodes 125 -iters 10 -o lulesh.trace
//	tracegen -i lulesh.trace -stats
//	tracegen -i lulesh.trace -extrapolate 128 -o lulesh-16000.trace
//	tracegen -workload hpcg -nodes 64 -format text -o hpcg.txt
//	tracegen -i hpcg.txt -expand -stats
//	tracegen -fault-mix field-ddr4 -ce-events 512 -o ces.ndjson
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/collectives"
	"repro/internal/extrapolate"
	"repro/internal/faultmodel"
	"repro/internal/report"
	"repro/internal/systems"
	"repro/internal/trace"
	"repro/internal/traceanalysis"
	"repro/internal/tracegen"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available workloads and their skeletons")
		workload = flag.String("workload", "", "workload to generate")
		nodes    = flag.Int("nodes", 128, "rank count (adjusted to decomposition constraints)")
		iters    = flag.Int("iters", 10, "main-loop iterations")
		seed     = flag.Uint64("seed", 1, "random seed")
		input    = flag.String("i", "", "read a trace file instead of generating")
		output   = flag.String("o", "", "write the trace to this file")
		format   = flag.String("format", "binary", "output format: binary or text")
		factor   = flag.Int("extrapolate", 0, "extrapolate the trace by this factor")
		expand   = flag.Bool("expand", false, "expand collectives into point-to-point schedules")
		stat     = flag.Bool("stats", false, "print trace statistics")
		analyze  = flag.Bool("analyze", false, "print CE-sensitivity analysis (collective cadence, volumes, imbalance)")
		faultMix = flag.String("fault-mix", "", "export a fault-mix CE event stream (advisor NDJSON) instead of a workload trace: preset name or JSON spec file")
		ceEvents = flag.Int("ce-events", 256, "CE events to export with -fault-mix")
		ceNodes  = flag.Int("ce-nodes", 1, "nodes to export with -fault-mix (ids 0..n-1)")
		ceMTBCE  = flag.Duration("ce-mtbce", time.Hour, "aggregate per-node MTBCE for -fault-mix when the spec carries no mtbce_ns")
		ceTenant = flag.String("ce-tenant", "tracegen", "tenant stamped on exported CE events (advisor ingest requires one)")
	)
	flag.Parse()

	if *faultMix != "" {
		if *workload != "" || *input != "" || *list {
			fatal(fmt.Errorf("tracegen: -fault-mix is a CE event export; it excludes -workload, -i and -list"))
		}
		if *ceEvents < 1 {
			fatal(fmt.Errorf("tracegen: -ce-events must be at least 1, got %d", *ceEvents))
		}
		if *ceNodes < 1 {
			fatal(fmt.Errorf("tracegen: -ce-nodes must be at least 1, got %d", *ceNodes))
		}
		if *ceMTBCE <= 0 {
			fatal(fmt.Errorf("tracegen: -ce-mtbce must be positive, got %s", *ceMTBCE))
		}
		if err := exportFaultMix(*faultMix, *output, *ceTenant, *ceEvents, *ceNodes, int64(*ceMTBCE), *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		t := report.New("workloads (Table I)",
			"name", "dims", "stencil", "halo", "compute/iter", "allreduce-every", "dots/iter")
		for _, name := range tracegen.Names() {
			spec, err := tracegen.Lookup(name)
			if err != nil {
				fatal(err)
			}
			stencil := "faces"
			if spec.Stencil == tracegen.Full {
				stencil = "full"
			}
			every := "never"
			if spec.AllreduceEvery > 0 {
				every = fmt.Sprintf("%d", spec.AllreduceEvery)
			}
			t.AddRow(name, fmt.Sprintf("%dD", spec.Dims), stencil,
				fmt.Sprintf("%dKiB", spec.HaloBytes>>10),
				report.Nanos(spec.ComputeNs), every,
				fmt.Sprintf("%d", spec.DotsPerIter))
		}
		if err := t.WriteASCII(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	var tr *trace.Trace
	switch {
	case *input != "":
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if strings.HasSuffix(*input, ".txt") {
			tr, err = trace.ReadText(f)
		} else {
			tr, err = trace.ReadBinary(f)
		}
		if err != nil {
			fatal(fmt.Errorf("reading %s: %w", *input, err))
		}
	case *workload != "":
		ranks := tracegen.PreferredRanks(*workload, *nodes)
		var err error
		tr, err = tracegen.Generate(*workload, ranks, *iters, *seed)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("tracegen: pass -workload, -i or -list"))
	}

	if *factor > 0 {
		var err error
		tr, err = extrapolate.Extrapolate(tr, *factor)
		if err != nil {
			fatal(err)
		}
	}
	if *expand {
		var err error
		tr, err = collectives.Expand(tr, collectives.Config{})
		if err != nil {
			fatal(err)
		}
	}

	if *stat {
		s := tr.ComputeStats()
		t := report.New(fmt.Sprintf("trace %s", tr.Name), "metric", "value")
		t.AddRow("ranks", fmt.Sprintf("%d", s.Ranks))
		t.AddRow("ops", fmt.Sprintf("%d", s.Ops))
		t.AddRow("sends", fmt.Sprintf("%d", s.Sends))
		t.AddRow("recvs", fmt.Sprintf("%d", s.Recvs))
		t.AddRow("collectives", fmt.Sprintf("%d", s.Collectives))
		t.AddRow("compute-total", report.Nanos(s.CalcNanos))
		t.AddRow("send-bytes", fmt.Sprintf("%d", s.Bytes))
		if err := t.WriteASCII(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *analyze {
		r, err := traceanalysis.Analyze(tr)
		if err != nil {
			fatal(err)
		}
		t := report.New(fmt.Sprintf("analysis of %s", tr.Name), "metric", "value")
		t.AddRow("ranks", fmt.Sprintf("%d", r.Ranks))
		t.AddRow("ops", fmt.Sprintf("%d", r.Ops))
		t.AddRow("compute-mean", report.Nanos(int64(r.ComputeNanosMean)))
		t.AddRow("compute-imbalance", fmt.Sprintf("%.2f%%", r.ComputeImbalancePct))
		t.AddRow("collectives/rank", fmt.Sprintf("%d", r.CollectivesPerRank))
		t.AddRow("sync-interval", report.Nanos(r.SyncIntervalNanos))
		t.AddRow("collective-rate", fmt.Sprintf("%.2f/s", r.CollectiveRatePerSecond()))
		t.AddRow("messages/rank", fmt.Sprintf("%.1f", r.MessagesPerRank))
		t.AddRow("bytes/rank", fmt.Sprintf("%.0f", r.BytesPerRank))
		t.AddRow("mean-message", fmt.Sprintf("%.0fB", r.MeanMessageBytes))
		t.AddRow("max-message", fmt.Sprintf("%dB", r.MaxMessageBytes))
		for i, c := range r.SizeClasses {
			if c > 0 {
				t.AddRow("msgs["+traceanalysis.SizeClassLabel(i)+"]", fmt.Sprintf("%d", c))
			}
		}
		if err := t.WriteASCII(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if *format == "text" || strings.HasSuffix(*output, ".txt") {
			err = trace.WriteText(f, tr)
		} else {
			err = trace.WriteBinary(f, tr)
		}
		if err != nil {
			fatal(fmt.Errorf("writing %s: %w", *output, err))
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %s (%d ranks, %d ops)\n", *output, tr.NumRanks(), tr.NumOps())
	}
}

// exportFaultMix writes per-node CE events generated by a fault-mix
// spec as advisor-ingest NDJSON ({"node","ts_ns","addr","bank","synd"}
// lines), ready for POST /v1/advise/ingest. The syndrome field carries
// the generating mode, so classifier output can be scored against
// ground truth.
func exportFaultMix(arg, output, tenant string, events, nodes int, mtbceNanos int64, seed uint64) error {
	if tenant == "" {
		return fmt.Errorf("tracegen: -ce-tenant must not be empty")
	}
	spec, err := resolveFaultMix(arg)
	if err != nil {
		return err
	}
	s := spec.WithMTBCE(mtbceNanos)
	var w io.Writer = os.Stdout
	if output != "" {
		f, err := os.Create(output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	type line struct {
		Tenant    string `json:"tenant"`
		Node      string `json:"node"`
		TimeNanos int64  `json:"ts_ns"`
		Addr      uint64 `json:"addr"`
		Bank      int    `json:"bank"`
		Syndrome  string `json:"synd"`
	}
	total := 0
	for node := 0; node < nodes; node++ {
		evs, err := s.Events(seed, uint64(node), events)
		if err != nil {
			return err
		}
		for _, e := range evs {
			synd := e.Kind.String()
			if e.Transient {
				synd += "-transient"
			}
			if err := enc.Encode(line{
				Tenant:    tenant,
				Node:      fmt.Sprintf("node-%d", node),
				TimeNanos: e.TimeNanos,
				Addr:      e.Addr,
				Bank:      e.Bank,
				Syndrome:  synd,
			}); err != nil {
				return err
			}
			total++
		}
	}
	if output != "" {
		fmt.Fprintf(os.Stderr, "tracegen: wrote %s (%d CE events, %d nodes, mix %s)\n", output, total, nodes, s)
	}
	return nil
}

// resolveFaultMix mirrors cmd/cesim's convention: a systems preset name
// wins over a file, anything else is read as a JSON spec file.
func resolveFaultMix(arg string) (faultmodel.Spec, error) {
	if mix, err := systems.FaultMixByName(arg); err == nil {
		return mix.Spec, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return faultmodel.Spec{}, fmt.Errorf("tracegen: -fault-mix %q is neither a preset (%s) nor a readable spec file: %v",
			arg, strings.Join(systems.FaultMixNames(), ", "), err)
	}
	s, err := faultmodel.ParseSpec(data)
	if err != nil {
		return faultmodel.Spec{}, fmt.Errorf("tracegen: -fault-mix %s: %w", arg, err)
	}
	return s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
