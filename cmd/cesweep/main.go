// cesweep regenerates the paper's evaluation tables and figures.
//
// Examples:
//
//	cesweep -table 2                 # Table II catalog
//	cesweep -figure 2                # node-level noise signatures
//	cesweep -figure 5                # exascale projections, reduced scale
//	cesweep -figure 5 -scale paper   # figure-fidelity node counts (slow)
//	cesweep -figure 3 -workloads lulesh,hpcg -nodes 1024 -reps 8 -csv
//
// With -cluster, the figure sweep is sharded across a cesimd worker
// fleet (see docs/CLUSTER.md); the merged output is bit-identical to a
// local run with the same options:
//
//	cesweep -figure 5 -cluster http://coordinator:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	var (
		figure    = flag.String("figure", "", "figure to regenerate: 2, 3, 4, 5, 6, 7, 8 or 9")
		table     = flag.String("table", "", "table to regenerate: 2")
		surface   = flag.String("surface", "", "workload for a full (MTBCE x duration) overhead surface (Fig. 7 generalization)")
		scale     = flag.String("scale", "reduced", "reduced (scale-compensated) or paper (Table II node counts)")
		nodes     = flag.Int("nodes", 0, "reduced-scale node count override")
		iters     = flag.Int("iters", 0, "main-loop iterations override")
		reps      = flag.Int("reps", 0, "repetitions per configuration override")
		seed      = flag.Uint64("seed", 1, "base random seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		jsonOut   = flag.Bool("json", false, "emit JSON instead of an aligned table (figures only)")
		clusterAt = flag.String("cluster", "", "coordinator URL: run the figure sweep on a cesimd cluster (figures 3-9)")
	)
	flag.Parse()

	selected := 0
	for _, s := range []string{*figure, *table, *surface} {
		if s != "" {
			selected++
		}
	}
	if selected != 1 {
		fatal(fmt.Errorf("cesweep: pass exactly one of -figure, -table or -surface"))
	}

	// Only the sweep figures (3-9) shard into (figure x workload) cells;
	// Table II, Figure 2 and surfaces are single local computations.
	if *clusterAt != "" && *figure == "" {
		fatal(fmt.Errorf("cesweep: -cluster only applies to -figure sweeps"))
	}
	if *clusterAt != "" && *figure == "2" {
		fatal(fmt.Errorf("cesweep: figure 2 is a single local run; -cluster needs figures 3-9"))
	}

	if *table != "" {
		if *table != "2" {
			fatal(fmt.Errorf("cesweep: unknown table %q (only Table II is reproducible)", *table))
		}
		write(core.Table2(), *csvOut)
		return
	}

	if *surface != "" {
		opts := core.Options{Nodes: *nodes, Iterations: *iters, Reps: *reps, Seed: *seed}
		if *scale == "paper" {
			opts.Scale = core.Paper
		}
		f, hm, err := core.Surface(opts, *surface, nil, nil)
		if err != nil {
			fatal(err)
		}
		if *csvOut {
			write(f.Table(), true)
			return
		}
		if *jsonOut {
			if err := f.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		if err := hm.Render(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *figure == "2" {
		_, t, err := core.Figure2(*seed)
		if err != nil {
			fatal(err)
		}
		write(t, *csvOut)
		return
	}

	driver, ok := core.Figures()[*figure]
	if !ok {
		fatal(fmt.Errorf("cesweep: unknown figure %q", *figure))
	}
	opts := core.Options{
		Nodes:      *nodes,
		Iterations: *iters,
		Reps:       *reps,
		Seed:       *seed,
	}
	switch *scale {
	case "reduced":
		opts.Scale = core.Reduced
	case "paper":
		opts.Scale = core.Paper
	default:
		fatal(fmt.Errorf("cesweep: unknown scale %q", *scale))
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	start := time.Now()
	var f *core.Figure
	var err error
	if *clusterAt != "" {
		client := &cluster.Client{Base: *clusterAt}
		f, err = client.Figure(context.Background(), *figure, opts)
	} else {
		f, err = driver(opts)
	}
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := f.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	write(f.Table(), *csvOut)
	fmt.Fprintf(os.Stderr, "cesweep: figure %s, %d rows in %s\n",
		*figure, len(f.Rows), time.Since(start).Truncate(time.Millisecond))
}

func write(t *report.Table, csv bool) {
	var err error
	if csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.WriteASCII(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
