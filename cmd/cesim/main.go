// cesim runs a single correctable-error overhead simulation: one
// workload at one scale under one CE scenario, and reports the slowdown
// against the noise-free baseline.
//
// Examples:
//
//	cesim -workload lulesh -nodes 512 -iters 10 -mtbce 5544s -perevent 133ms
//	cesim -workload hpcg -nodes 256 -mtbce 1s -perevent 775us -target 0 -reps 8
//	cesim -workload minife -nodes 128 -system exascale-cielo-x10 -mode firmware-emca
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultmodel"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/systems"
)

func main() {
	var (
		workload = flag.String("workload", "minife", "workload name (see cmd/tracegen -list)")
		nodes    = flag.Int("nodes", 128, "target node count (one rank per node)")
		iters    = flag.Int("iters", 8, "main-loop iterations")
		mtbce    = flag.Duration("mtbce", 0, "per-node mean time between CEs (e.g. 5544s); 0 with -system uses Table II")
		perEvent = flag.Duration("perevent", 0, "per-CE handling time (e.g. 133ms); 0 with -mode uses the named scenario")
		system   = flag.String("system", "", "Table II system supplying the MTBCE (e.g. exascale-cielo-x10)")
		mode     = flag.String("mode", "", "logging mode supplying the per-event cost (hardware-only, software-cmci, firmware-emca)")
		faultMix = flag.String("fault-mix", "", "fault-mode mixture replacing the Poisson arrivals: a preset name (field-ddr4, high-altitude, skewed-dimms, bursty-row) or a JSON spec file (docs/FAULTMODEL.md)")
		target   = flag.Int("target", int(noise.AllNodes), "node experiencing CEs, or -1 for all nodes")
		seed     = flag.Uint64("seed", 1, "base random seed")
		reps     = flag.Int("reps", 3, "repetitions (distinct CE schedules)")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	// Validate every flag combination before any pipeline work, so a
	// bad invocation dies with one clear line instead of whatever the
	// trace generator or noise model reports downstream.
	mixSpec, err := resolveFaultMix(*faultMix)
	if err != nil {
		fatal(fmt.Errorf("cesim: %w", err))
	}
	mixMTBCE := int64(0)
	if mixSpec != nil {
		mixMTBCE = mixSpec.MTBCENanos
	}
	if err := validateFlags(*workload, *nodes, *iters, *mtbce, *perEvent, *system, *mode, *target, *reps, mixMTBCE); err != nil {
		fatal(fmt.Errorf("cesim: %w", err))
	}
	mtbceNanos := int64(*mtbce)
	if mixMTBCE != 0 {
		mtbceNanos = mixMTBCE
	}
	if *system != "" {
		sys, err := systems.ByName(*system)
		if err != nil {
			fatal(err)
		}
		mtbceNanos = sys.MTBCENanos()
	}
	perEventNanos := int64(*perEvent)
	if *mode != "" {
		m, err := systems.LoggingModeByName(*mode)
		if err != nil {
			fatal(err)
		}
		perEventNanos = m.PerEventNanos
	}

	var arrivals noise.Arrivals
	if mixSpec != nil {
		proc, err := mixSpec.WithMTBCE(mtbceNanos).Process()
		if err != nil {
			fatal(fmt.Errorf("cesim: -fault-mix: %w", err))
		}
		arrivals = proc
	}

	exp, err := core.NewExperiment(core.ExperimentConfig{
		Workload: *workload, Nodes: *nodes, Iterations: *iters, TraceSeed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	rep, err := exp.RunRepeated(core.Scenario{
		MTBCE:    mtbceNanos,
		Arrivals: arrivals,
		PerEvent: noise.Fixed(perEventNanos),
		Target:   int32(*target),
		Seed:     *seed + 1,
	}, *reps)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	t := report.New(fmt.Sprintf("cesim: %s on %d nodes", *workload, exp.Ranks()),
		"metric", "value")
	t.AddRow("ranks", fmt.Sprintf("%d", exp.Ranks()))
	t.AddRow("baseline-makespan", report.Nanos(exp.Baseline().Makespan))
	t.AddRow("mtbce-node", report.Nanos(mtbceNanos))
	t.AddRow("per-event", report.Nanos(perEventNanos))
	if arrivals != nil {
		t.AddRow("fault-mix", arrivals.String())
	}
	if rep.Saturated && rep.Sample.N() == 0 {
		t.AddRow("slowdown", "no-progress (CE load >= 1)")
	} else {
		s := rep.Sample.Summarize()
		t.AddRow("slowdown-mean", report.Pct(s.Mean))
		t.AddRow("slowdown-ci95", report.Pct(s.CI95))
		t.AddRow("slowdown-min", report.Pct(s.Min))
		t.AddRow("slowdown-max", report.Pct(s.Max))
		t.AddRow("reps", fmt.Sprintf("%d", s.N))
	}
	t.AddRow("wall-time", elapsed.Truncate(time.Millisecond).String())

	var werr error
	if *csvOut {
		werr = t.WriteCSV(os.Stdout)
	} else {
		werr = t.WriteASCII(os.Stdout)
	}
	if werr != nil {
		fatal(werr)
	}
}

// resolveFaultMix turns the -fault-mix argument into a mixture spec:
// empty means none, a systems preset name wins over a file, anything
// else is read as a JSON spec file.
func resolveFaultMix(arg string) (*faultmodel.Spec, error) {
	if arg == "" {
		return nil, nil
	}
	if mix, err := systems.FaultMixByName(arg); err == nil {
		return &mix.Spec, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("-fault-mix %q is neither a preset (%s) nor a readable spec file: %v",
			arg, strings.Join(systems.FaultMixNames(), ", "), err)
	}
	s, err := faultmodel.ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("-fault-mix %s: %w", arg, err)
	}
	return &s, nil
}

// validateFlags rejects inconsistent flag combinations up front.
// mixMTBCE is the mtbce_ns carried by a -fault-mix spec (0 when absent),
// which can stand in for -mtbce/-system.
func validateFlags(workload string, nodes, iters int, mtbce, perEvent time.Duration, system, mode string, target, reps int, mixMTBCE int64) error {
	if workload == "" {
		return fmt.Errorf("-workload is required")
	}
	if nodes < 2 {
		return fmt.Errorf("-nodes must be at least 2, got %d", nodes)
	}
	if iters < 1 {
		return fmt.Errorf("-iters must be at least 1, got %d", iters)
	}
	switch {
	case mtbce == 0 && system == "" && mixMTBCE == 0:
		return fmt.Errorf("provide -mtbce, -system, or a -fault-mix spec carrying mtbce_ns")
	case mtbce != 0 && system != "":
		return fmt.Errorf("-mtbce and -system are mutually exclusive")
	case mixMTBCE != 0 && (mtbce != 0 || system != ""):
		return fmt.Errorf("the -fault-mix spec carries mtbce_ns; don't also set -mtbce or -system")
	case mtbce < 0:
		return fmt.Errorf("-mtbce must be positive, got %s", mtbce)
	}
	switch {
	case perEvent == 0 && mode == "":
		return fmt.Errorf("provide -perevent or -mode")
	case perEvent != 0 && mode != "":
		return fmt.Errorf("-perevent and -mode are mutually exclusive")
	case perEvent < 0:
		return fmt.Errorf("-perevent must be positive, got %s", perEvent)
	}
	if target < int(noise.AllNodes) || target >= nodes {
		return fmt.Errorf("-target must be -1 (all nodes) or a node in [0,%d), got %d", nodes, target)
	}
	if reps < 1 {
		return fmt.Errorf("-reps must be at least 1, got %d", reps)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
