// Command ceslint runs the repository's determinism-and-safety lint
// suite (internal/lint): the determinism checks (detrand, maporder,
// ctxflow, senterr) that keep simulation output a pure function of
// (configuration, seed), and the concurrency-and-durability checks
// (lockcheck, durio, atomicfield, gorolife) that keep the service tier
// honest about locks, fsync ordering and goroutine lifecycles. See
// docs/LINT.md.
//
// Usage:
//
//	ceslint [-list] [-json] [-only a,b] [packages...]
//
// Packages default to ./... relative to the enclosing module. -json
// emits findings as a JSON array of {file,line,col,analyzer,message}
// objects on stdout (an empty array when clean) for editor and CI
// integration. Exit status: 0 clean, 1 diagnostics reported, 2
// operational failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/load"
	"repro/internal/lint/runner"
)

// jsonFinding is the -json wire shape of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ceslint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		filtered := analyzers[:0:0]
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			unknown := make([]string, 0, len(keep))
			for name := range keep {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "ceslint: unknown analyzer(s) %s (see -list)\n", strings.Join(unknown, ", "))
			return 2
		}
		analyzers = filtered
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceslint:", err)
		return 2
	}
	loader, err := load.Module(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceslint:", err)
		return 2
	}
	pkgs, err := loader.Patterns(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceslint:", err)
		return 2
	}
	diags, err := runner.Run(loader.Fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceslint:", err)
		return 2
	}
	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     d.Position.Filename,
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "ceslint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ceslint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
