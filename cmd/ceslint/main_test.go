package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepositoryIsClean is the acceptance smoke test: the full analyzer
// suite over the real module must report nothing. Equivalent to
// `go run ./cmd/ceslint ./...` exiting 0.
func TestRepositoryIsClean(t *testing.T) {
	if code := run([]string{"./..."}); code != 0 {
		t.Fatalf("ceslint ./... exited %d on the repository; run `go run ./cmd/ceslint ./...` for the findings", code)
	}
}

func TestListExitsZero(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
}

func TestUnknownOnlyAnalyzerRejected(t *testing.T) {
	if code := run([]string{"-only", "nosuchcheck"}); code != 2 {
		t.Fatalf("unknown -only analyzer exited %d, want 2", code)
	}
}

// TestSeededViolationFails proves the CI failure path end to end: a
// scratch module containing one senterr violation must make ceslint
// exit 1, and the fixed version exit 0.
func TestSeededViolationFails(t *testing.T) {
	root := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("q/q.go", `package q

import "errors"

var ErrBoom = errors.New("boom")

func Match(err error) bool {
	return err == ErrBoom
}
`)

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	if code := run([]string{"./..."}); code != 1 {
		t.Fatalf("seeded senterr violation exited %d, want 1", code)
	}

	write("q/q.go", `package q

import "errors"

var ErrBoom = errors.New("boom")

func Match(err error) bool {
	return errors.Is(err, ErrBoom)
}
`)
	if code := run([]string{"./..."}); code != 0 {
		t.Fatalf("fixed module exited %d, want 0", code)
	}
}
