package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns what it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestRepositoryIsClean is the acceptance smoke test: the full analyzer
// suite over the real module must report nothing. Equivalent to
// `go run ./cmd/ceslint ./...` exiting 0.
func TestRepositoryIsClean(t *testing.T) {
	if code := run([]string{"./..."}); code != 0 {
		t.Fatalf("ceslint ./... exited %d on the repository; run `go run ./cmd/ceslint ./...` for the findings", code)
	}
}

// TestListShowsAllAnalyzers pins the suite roster: -list must name
// every analyzer, old and new, so a wiring mistake in lint.All cannot
// silently drop a check from CI.
func TestListShowsAllAnalyzers(t *testing.T) {
	var code int
	out := captureStdout(t, func() { code = run([]string{"-list"}) })
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{
		"atomicfield", "ctxflow", "detrand", "durio",
		"gorolife", "lockcheck", "maporder", "senterr",
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

func TestUnknownOnlyAnalyzerRejected(t *testing.T) {
	if code := run([]string{"-only", "nosuchcheck"}); code != 2 {
		t.Fatalf("unknown -only analyzer exited %d, want 2", code)
	}
}

// TestSeededViolationFails proves the CI failure path end to end: a
// scratch module containing one senterr violation must make ceslint
// exit 1, and the fixed version exit 0.
func TestSeededViolationFails(t *testing.T) {
	root := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("q/q.go", `package q

import "errors"

var ErrBoom = errors.New("boom")

func Match(err error) bool {
	return err == ErrBoom
}
`)

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	if code := run([]string{"./..."}); code != 1 {
		t.Fatalf("seeded senterr violation exited %d, want 1", code)
	}

	write("q/q.go", `package q

import "errors"

var ErrBoom = errors.New("boom")

func Match(err error) bool {
	return errors.Is(err, ErrBoom)
}
`)
	if code := run([]string{"./..."}); code != 0 {
		t.Fatalf("fixed module exited %d, want 0", code)
	}
}

// TestJSONOutput drives the -json contract on both sides: a seeded
// violation yields one structured finding with resolved position and
// analyzer name, and a clean run yields an empty (non-null) array.
func TestJSONOutput(t *testing.T) {
	root := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("q/q.go", `package q

import "errors"

var ErrBoom = errors.New("boom")

func Match(err error) bool {
	return err == ErrBoom
}
`)

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	var code int
	out := captureStdout(t, func() { code = run([]string{"-json", "./..."}) })
	if code != 1 {
		t.Fatalf("seeded violation with -json exited %d, want 1", code)
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("parse -json output: %v\n%s", err, out)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "senterr" || f.Line == 0 || f.Col == 0 || !strings.HasSuffix(f.File, "q.go") || f.Message == "" {
		t.Fatalf("finding fields: %+v", f)
	}

	write("q/q.go", `package q

import "errors"

var ErrBoom = errors.New("boom")

func Match(err error) bool {
	return errors.Is(err, ErrBoom)
}
`)
	out = captureStdout(t, func() { code = run([]string{"-json", "./..."}) })
	if code != 0 {
		t.Fatalf("clean module with -json exited %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Fatalf("clean -json output is not an empty array: %q", out)
	}
}
