// mcasig reproduces the paper's Fig. 2: the node-level OS noise
// signature of correctable-error injection under each logging mode.
//
// Examples:
//
//	mcasig -mode native                 # Fig. 2a
//	mcasig -mode dryrun                 # Fig. 2b
//	mcasig -mode software               # Fig. 2c
//	mcasig -mode firmware -duration 4m  # Fig. 2d
//	mcasig -mode firmware -detours      # dump the (time, duration) series
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/mca"
	"repro/internal/report"
)

func main() {
	var (
		modeName = flag.String("mode", "native", "native, dryrun, correction-only, software or firmware")
		duration = flag.Duration("duration", 2*time.Minute, "measurement window")
		period   = flag.Duration("period", 10*time.Second, "EINJ injection period")
		cores    = flag.Int("cores", 48, "cores running the selfish detector")
		seed     = flag.Uint64("seed", 1, "random seed")
		detours  = flag.Bool("detours", false, "dump every detour (time_us dur_us core source)")
		plot     = flag.Bool("plot", false, "render the detour series as an ASCII scatter plot (log y), like Fig. 2")
		core     = flag.Int("core", -1, "restrict -detours to one core")
	)
	flag.Parse()

	mode, err := mca.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	sig, err := mca.Run(mca.Config{
		Seed:         *seed,
		Mode:         mode,
		Cores:        *cores,
		Duration:     int64(*duration),
		InjectPeriod: int64(*period),
	})
	if err != nil {
		fatal(err)
	}

	if *plot {
		var xs, ys []float64
		for _, d := range sig.Detours {
			if *core >= 0 && d.Core != int32(*core) {
				continue
			}
			xs = append(xs, float64(d.Start)/1e9) // seconds
			ys = append(ys, float64(d.Dur)/1000)  // microseconds
		}
		fmt.Printf("# %s noise signature (x: seconds, y: detour us, log scale)\n", mode)
		if err := report.Scatter(os.Stdout, xs, ys, report.ScatterOpts{
			LogY: true, XLabel: "time [s]", YLabel: "detour [us]",
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *detours {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		fmt.Fprintln(w, "# time_us dur_us core source")
		for _, d := range sig.Detours {
			if *core >= 0 && d.Core != int32(*core) {
				continue
			}
			fmt.Fprintf(w, "%.3f %.3f %d %s\n",
				float64(d.Start)/1000, float64(d.Dur)/1000, d.Core, d.Source)
		}
		return
	}

	st := sig.ComputeStats()
	perEvent, events := sig.PerEventCost()
	t := report.New(fmt.Sprintf("mcasig: %s signature over %s on %d cores", mode, *duration, *cores),
		"metric", "value")
	t.AddRow("detours", fmt.Sprintf("%d", st.Count))
	t.AddRow("max-detour", report.Nanos(st.MaxDur))
	t.AddRow("mean-detour", report.Nanos(int64(st.MeanDur)))
	t.AddRow("total-steal", report.Nanos(st.TotalDur))
	t.AddRow("noise", fmt.Sprintf("%.4f%%", st.NoisePct))
	if events > 0 {
		t.AddRow("per-event-cost", report.Nanos(int64(perEvent)))
		t.AddRow("ce-events", fmt.Sprintf("%d", events))
	}
	bySource := sig.MaxDetoursBySource()
	srcs := make([]string, 0, len(bySource))
	for src := range bySource {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		t.AddRow("max["+src+"]", report.Nanos(bySource[src]))
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
