// retiresim simulates DRAM fault populations against a page-retirement
// policy and reports the effective logged-CE rate — connecting the
// fault-mode studies the paper builds on (Levy et al., Siddiqua et al.)
// to the MTBCE(node) numbers its overhead analysis consumes.
//
// Examples:
//
//	retiresim                                  # default Cielo-like mix, threshold 3
//	retiresim -threshold 1 -maxpages 128
//	retiresim -faults 60 -cerate 2.5 -years 5  # a very unhealthy node
//	retiresim -sweep                           # threshold sweep table
//	retiresim -fault-mix field-ddr4            # weights from a faultmodel preset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/faultmodel"
	"repro/internal/report"
	"repro/internal/retire"
	"repro/internal/systems"
)

func main() {
	var (
		years     = flag.Float64("years", 1, "simulated span in years")
		faults    = flag.Float64("faults", 6, "fault arrivals per node per year")
		ceRate    = flag.Float64("cerate", 0.5, "mean CEs per fault per hour")
		threshold = flag.Int("threshold", 3, "CEs on a page before retirement (0 disables)")
		maxPages  = flag.Int("maxpages", 64, "page retirement budget")
		seed      = flag.Uint64("seed", 1, "random seed")
		sweep     = flag.Bool("sweep", false, "sweep retirement thresholds instead of one run")
		faultMix  = flag.String("fault-mix", "", "fault-mix preset name or JSON spec file; its mode weights replace the Cielo-like mix")
	)
	flag.Parse()

	hours := *years * 365.25 * 24
	base := retire.Config{
		Seed:            *seed,
		Hours:           hours,
		FaultsPerYear:   *faults,
		CEsPerFaultHour: *ceRate,
	}
	if *faultMix != "" {
		spec, err := resolveFaultMix(*faultMix)
		if err != nil {
			fatal(err)
		}
		mix, err := mixFromSpec(spec)
		if err != nil {
			fatal(err)
		}
		base.Mix = mix
	}

	if *sweep {
		t := report.New(fmt.Sprintf("page-retirement threshold sweep (%.1f faults/yr, %.2f CE/fault/hr, %gy)",
			*faults, *ceRate, *years),
			"threshold", "ces-logged", "suppressed", "pages-retired", "mtbce-logged")
		for _, thr := range []int{0, 1, 2, 3, 5, 10, 50} {
			cfg := base
			cfg.Policy = retire.Policy{Threshold: thr, MaxPages: *maxPages}
			res, err := retire.Simulate(cfg)
			if err != nil {
				fatal(err)
			}
			t.AddRow(fmt.Sprintf("%d", thr),
				fmt.Sprintf("%d", res.CEsLogged),
				fmt.Sprintf("%.1f%%", res.SuppressionPct()),
				fmt.Sprintf("%d", res.PagesRetired),
				report.Nanos(res.LoggedMTBCENanos(hours)))
		}
		if err := t.WriteASCII(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	cfg := base
	cfg.Policy = retire.Policy{Threshold: *threshold, MaxPages: *maxPages}
	res, err := retire.Simulate(cfg)
	if err != nil {
		fatal(err)
	}
	t := report.New(fmt.Sprintf("page retirement over %gy (threshold %d, budget %d pages)",
		*years, *threshold, *maxPages),
		"metric", "value")
	for k := retire.FaultCell; k <= retire.FaultBank; k++ {
		t.AddRow("faults["+k.String()+"]", fmt.Sprintf("%d", res.Faults[k]))
	}
	t.AddRow("ces-generated", fmt.Sprintf("%d", res.CEsGenerated))
	t.AddRow("ces-logged", fmt.Sprintf("%d", res.CEsLogged))
	t.AddRow("suppression", fmt.Sprintf("%.1f%%", res.SuppressionPct()))
	t.AddRow("pages-retired", fmt.Sprintf("%d", res.PagesRetired))
	t.AddRow("memory-lost", fmt.Sprintf("%dKiB", res.BytesRetired>>10))
	t.AddRow("mtbce-logged", report.Nanos(res.LoggedMTBCENanos(hours)))
	if res.Truncated {
		t.AddRow("warning", "event stream truncated (MaxCEs)")
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
}

// resolveFaultMix interprets the -fault-mix argument the same way cesim
// does: a catalog preset name wins, anything else is read as a JSON spec
// file.
func resolveFaultMix(arg string) (*faultmodel.Spec, error) {
	if fm, err := systems.FaultMixByName(arg); err == nil {
		spec := fm.Spec
		return &spec, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("-fault-mix %q is neither a preset (%s) nor a readable spec file: %v",
			arg, strings.Join(systems.FaultMixNames(), ", "), err)
	}
	spec, err := faultmodel.ParseSpec(data)
	if err != nil {
		return nil, err
	}
	return &spec, nil
}

// mixFromSpec folds a faultmodel mixture onto retire's per-kind weights:
// transient and permanent modes of the same kind sum. The burst shape
// and skew of the mixture do not map onto retire's fault-population
// model, so only the composition carries over.
func mixFromSpec(spec *faultmodel.Spec) (retire.Mix, error) {
	var mix retire.Mix
	if err := spec.Validate(); err != nil {
		return mix, err
	}
	for _, m := range spec.Modes {
		kind, err := retire.ParseKind(m.Kind)
		if err != nil {
			return mix, err
		}
		mix[kind] += m.Weight
	}
	return mix, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
