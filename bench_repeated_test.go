package repro_test

import (
	"testing"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/loggopsim"
	"repro/internal/netmodel"
	"repro/internal/noise"
	"repro/internal/tracegen"
)

// benchNoise builds the per-repetition CE model; each repetition gets a
// fresh model with its own seed, exactly as core.RunRepeated does.
func benchNoise(b *testing.B, ranks int, seed uint64) noise.Model {
	b.Helper()
	nm, err := noise.NewCE(ranks, noise.Config{
		Seed: seed, MTBCE: 50 * nsMs, Duration: noise.Fixed(1 * nsMs), Target: noise.AllNodes,
	})
	if err != nil {
		b.Fatal(err)
	}
	return nm
}

// BenchmarkRepeatedRuns compares the per-repetition cost of constructing
// a fresh simulator every run (the pre-reuse behavior of Simulate)
// against reusing one Simulator's preallocated state across runs (the
// hot path of core.RunRepeated and the daemon's sweep jobs). Results
// are bit-identical by construction — see TestSimulatorReuseBitIdentical
// — so the allocs/op delta is pure overhead removed. A snapshot of the
// numbers lives in BENCH_repeated.json.
func BenchmarkRepeatedRuns(b *testing.B) {
	tr, err := tracegen.Generate("minife", 64, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	ex, err := collectives.Expand(tr, collectives.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ranks := ex.NumRanks()
	cfg := loggopsim.Config{Net: netmodel.CrayXC40(), Profile: true}

	b.Run("fresh-simulate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Noise = benchNoise(b, ranks, uint64(i)+1)
			if _, err := loggopsim.Simulate(ex, c); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("reused-simulator", func(b *testing.B) {
		sim, err := loggopsim.NewSimulator(ex, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(benchNoise(b, ranks, uint64(i)+1)); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Experiment-level: the pooled path everything above core sits on.
	b.Run("experiment-run-repeated", func(b *testing.B) {
		exp, err := core.NewExperiment(core.ExperimentConfig{
			Workload: "minife", Nodes: 64, Iterations: 5, TraceSeed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		sc := core.Scenario{
			MTBCE: 50 * nsMs, PerEvent: noise.Fixed(1 * nsMs), Target: noise.AllNodes, Seed: 1,
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exp.RunRepeated(sc, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}
