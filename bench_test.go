// Package repro_test is the benchmark harness: one benchmark per table
// and figure in the paper's evaluation, plus ablation benches for the
// design choices called out in DESIGN.md.
//
// Each figure benchmark regenerates the corresponding rows and writes
// them to bench_results/<id>.txt; the reported custom metrics summarize
// the figure's headline quantity so regressions are visible in benchmark
// diffs. Scale is controlled by REPRO_SCALE:
//
//	(unset)  reduced harness scale: 128 nodes, 2 reps  (~minutes total)
//	full     512 nodes, 3 reps                         (~tens of minutes)
//	paper    Table II node counts, 8 reps              (hours)
package repro_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/loggopsim"
	"repro/internal/netmodel"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/tracegen"
)

const (
	nsUs = int64(1000)
	nsMs = int64(1000 * 1000)
	nsS  = int64(1000 * 1000 * 1000)
)

// benchOpts returns the figure options for the REPRO_SCALE in effect.
func benchOpts() core.Options {
	switch os.Getenv("REPRO_SCALE") {
	case "paper":
		return core.Options{Scale: core.Paper, Seed: 1}
	case "full":
		return core.Options{Nodes: 512, Reps: 3, Seed: 1}
	default:
		return core.Options{Nodes: 128, Reps: 2, Seed: 1}
	}
}

// writeResult saves a rendered table under bench_results/.
func writeResult(b *testing.B, name string, t *report.Table) {
	b.Helper()
	if err := os.MkdirAll("bench_results", 0o755); err != nil {
		b.Fatal(err)
	}
	f, err := os.Create(filepath.Join("bench_results", name+".txt"))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := t.WriteASCII(f); err != nil {
		b.Fatal(err)
	}
}

// maxRow returns the largest non-saturated slowdown among rows matching
// the predicate.
func maxRow(f *core.Figure, match func(core.Row) bool) float64 {
	max := 0.0
	for _, r := range f.Rows {
		if r.Saturated || !match(r) {
			continue
		}
		if r.MeanPct > max {
			max = r.MeanPct
		}
	}
	return max
}

// BenchmarkTable2Catalog regenerates Table II.
func BenchmarkTable2Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		writeResult(b, "table2", core.Table2())
	}
}

// BenchmarkFig2NoiseSignatures regenerates the Blake node-level noise
// signatures (Fig. 2a-d and the all-logging-off case).
func BenchmarkFig2NoiseSignatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sigs, t, err := core.Figure2(1)
		if err != nil {
			b.Fatal(err)
		}
		writeResult(b, "fig2", t)
		sw, _ := sigs["software"].PerEventCost()
		fw, _ := sigs["firmware"].PerEventCost()
		b.ReportMetric(sw/1000, "software-us/event")
		b.ReportMetric(fw/1e6, "firmware-ms/event")
	}
}

// BenchmarkFig3SingleProcess regenerates the single-process CE sweep.
func BenchmarkFig3SingleProcess(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		f, err := core.Figure3(opts)
		if err != nil {
			b.Fatal(err)
		}
		writeResult(b, "fig3", f.Table())
		// Headline: firmware logging at MTBCE=1s stays moderate, at
		// 200ms it is already extreme (paper: hundreds of percent).
		b.ReportMetric(maxRow(f, func(r core.Row) bool {
			return r.Mode == "firmware-emca" && r.MTBCENanos == 1*nsS
		}), "fw@1s-max-pct")
		b.ReportMetric(maxRow(f, func(r core.Row) bool {
			return r.Mode == "software-cmci" && r.MTBCENanos == 10*nsMs
		}), "sw@10ms-max-pct")
	}
}

// BenchmarkFig4CurrentSystems regenerates the Cielo/Trinity/Summit
// study. Paper headline: everything far below 10%.
func BenchmarkFig4CurrentSystems(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		f, err := core.Figure4(opts)
		if err != nil {
			b.Fatal(err)
		}
		writeResult(b, "fig4", f.Table())
		b.ReportMetric(maxRow(f, func(core.Row) bool { return true }), "max-pct")
	}
}

// BenchmarkFig5Exascale regenerates the exascale projections. Paper
// headline: firmware logging reaches 100-1000% at x100/Facebook-median
// rates while LAMMPS-lj/snap stay low.
func BenchmarkFig5Exascale(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		f, err := core.Figure5(opts)
		if err != nil {
			b.Fatal(err)
		}
		writeResult(b, "fig5", f.Table())
		b.ReportMetric(maxRow(f, func(r core.Row) bool {
			return r.Mode == "firmware-emca" && r.System == "exascale-cielo-x100"
		}), "fw@x100-max-pct")
		b.ReportMetric(maxRow(f, func(r core.Row) bool {
			return r.Mode == "software-cmci"
		}), "sw-max-pct")
	}
}

// BenchmarkFig6SoftwareStress regenerates the software/OS reporting
// stress figure. Paper headline: software stays under 10% even at
// ~1 CE/s/node.
func BenchmarkFig6SoftwareStress(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		f, err := core.Figure6(opts)
		if err != nil {
			b.Fatal(err)
		}
		writeResult(b, "fig6", f.Table())
		b.ReportMetric(maxRow(f, func(r core.Row) bool {
			return r.Mode == "software-cmci"
		}), "sw-max-pct")
	}
}

// BenchmarkFig7DurationSweep regenerates the per-event duration sweep.
// Paper headline: four orders of magnitude in CE rate produce only one
// to two orders in overhead; short durations tolerate huge rates.
func BenchmarkFig7DurationSweep(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		f, err := core.Figure7(opts)
		if err != nil {
			b.Fatal(err)
		}
		writeResult(b, "fig7", f.Table())
		b.ReportMetric(maxRow(f, func(r core.Row) bool {
			return r.PerEventNanos == 150
		}), "150ns-max-pct")
		b.ReportMetric(maxRow(f, func(r core.Row) bool {
			return r.PerEventNanos == 133*nsMs
		}), "133ms-max-pct")
	}
}

// BenchmarkScaleSensitivity checks the scale-compensation claim behind
// the reduced harness: the same aggregate CE load produces comparable
// slowdowns across simulated node counts.
func BenchmarkScaleSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := report.New("scale sensitivity: lulesh, firmware @ exascale-x100 aggregate rate",
			"nodes", "mtbce", "slowdown")
		const paperNodes = 16384
		const paperMTBCE = 554*nsS + 400*nsMs
		for _, nodes := range []int{64, 128, 256} {
			exp, err := core.NewExperiment(core.ExperimentConfig{
				Workload: "lulesh", Nodes: nodes, Iterations: 40, TraceSeed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			mtbce := paperMTBCE * int64(nodes) / paperNodes
			rep, err := exp.RunRepeated(core.Scenario{
				MTBCE: mtbce, PerEvent: noise.Fixed(133 * nsMs), Target: noise.AllNodes, Seed: 2,
			}, 3)
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(fmt.Sprintf("%d", exp.Ranks()), report.Nanos(mtbce), report.Pct(rep.Sample.Mean()))
			b.ReportMetric(rep.Sample.Mean(), fmt.Sprintf("pct@%d", nodes))
		}
		writeResult(b, "scale-sensitivity", t)
	}
}

// BenchmarkAblationCollectiveAlgo compares allreduce expansion
// algorithms under identical CE noise (DESIGN.md ablation 1).
func BenchmarkAblationCollectiveAlgo(b *testing.B) {
	algos := []collectives.AllreduceAlgo{
		collectives.AllreduceRecursiveDoubling,
		collectives.AllreduceRabenseifner,
		collectives.AllreduceRing,
	}
	for i := 0; i < b.N; i++ {
		t := report.New("ablation: allreduce algorithm (lulesh, firmware @ MTBCE 5s, 64 nodes)",
			"algorithm", "baseline", "slowdown")
		for _, algo := range algos {
			exp, err := core.NewExperiment(core.ExperimentConfig{
				Workload: "lulesh", Nodes: 64, Iterations: 30, TraceSeed: 1,
				Collectives: collectives.Config{Allreduce: algo},
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := exp.RunRepeated(core.Scenario{
				MTBCE: 5 * nsS, PerEvent: noise.Fixed(133 * nsMs), Target: noise.AllNodes, Seed: 3,
			}, 3)
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(algo.String(), report.Nanos(exp.Baseline().Makespan), report.Pct(rep.Sample.Mean()))
		}
		writeResult(b, "ablation-collective-algo", t)
	}
}

// BenchmarkAblationRendezvous sweeps the eager/rendezvous threshold S
// (DESIGN.md ablation 2).
func BenchmarkAblationRendezvous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := report.New("ablation: eager threshold S (cth halo = 96 KiB messages, 64 nodes)",
			"S", "baseline", "slowdown")
		for _, s := range []int64{1 << 10, 8 << 10, 128 << 10, 1 << 20} {
			net := netmodel.CrayXC40()
			net.S = s
			exp, err := core.NewExperiment(core.ExperimentConfig{
				Workload: "cth", Nodes: 64, Iterations: 12, TraceSeed: 1, Net: net,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := exp.RunRepeated(core.Scenario{
				MTBCE: 3 * nsS, PerEvent: noise.Fixed(133 * nsMs), Target: noise.AllNodes, Seed: 5,
			}, 3)
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(fmt.Sprintf("%dKiB", s>>10), report.Nanos(exp.Baseline().Makespan), report.Pct(rep.Sample.Mean()))
		}
		writeResult(b, "ablation-rendezvous", t)
	}
}

// BenchmarkAblationNoiseSeeds quantifies run-to-run variance across CE
// schedules (DESIGN.md ablation 3) — the reason the paper averages >= 8
// repetitions.
func BenchmarkAblationNoiseSeeds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := core.NewExperiment(core.ExperimentConfig{
			Workload: "hpcg", Nodes: 64, Iterations: 20, TraceSeed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := exp.RunRepeated(core.Scenario{
			MTBCE: 2 * nsS, PerEvent: noise.Fixed(133 * nsMs), Target: noise.AllNodes, Seed: 11,
		}, 16)
		if err != nil {
			b.Fatal(err)
		}
		s := rep.Sample.Summarize()
		t := report.New("ablation: CE schedule variance (hpcg, firmware @ MTBCE 2s, 16 seeds)",
			"stat", "value")
		t.AddRow("mean", report.Pct(s.Mean))
		t.AddRow("stddev", report.Pct(s.StdDev))
		t.AddRow("ci95", report.Pct(s.CI95))
		t.AddRow("min", report.Pct(s.Min))
		t.AddRow("max", report.Pct(s.Max))
		writeResult(b, "ablation-noise-seeds", t)
		b.ReportMetric(s.StdDev, "stddev-pct")
	}
}

// BenchmarkAblationFirmwareModel compares the paper's flat 133 ms/event
// firmware cost against the mixture actually measured on Blake (7 ms
// SMI per event + 500 ms decode every 10th), which has a mean of 57 ms
// (DESIGN.md ablation 4).
func BenchmarkAblationFirmwareModel(b *testing.B) {
	models := []struct {
		name string
		dur  noise.Duration
	}{
		{"flat-133ms", noise.Fixed(133 * nsMs)},
		{"mixture-7ms+500ms/10", noise.EveryNth{Base: 7 * nsMs, Extra: 500 * nsMs, N: 10}},
		{"flat-57ms-mean-matched", noise.Fixed(57 * nsMs)},
	}
	for i := 0; i < b.N; i++ {
		exp, err := core.NewExperiment(core.ExperimentConfig{
			Workload: "milc", Nodes: 64, Iterations: 15, TraceSeed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		t := report.New("ablation: firmware per-event cost model (milc @ MTBCE 2s, 64 nodes)",
			"model", "slowdown")
		for _, m := range models {
			rep, err := exp.RunRepeated(core.Scenario{
				MTBCE: 2 * nsS, PerEvent: m.dur, Target: noise.AllNodes, Seed: 13,
			}, 4)
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(m.name, report.Pct(rep.Sample.Mean()))
		}
		writeResult(b, "ablation-firmware-model", t)
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed on a
// paper-representative workload, in trace-operations per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := tracegen.Generate("lulesh", 512, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	ex, err := collectives.Expand(tr, collectives.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ops := ex.NumOps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loggopsim.Simulate(ex, loggopsim.Config{Net: netmodel.CrayXC40()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// TestBenchHarnessSmoke runs tiny versions of every figure driver so
// `go test` exercises the harness paths without benchmark cost.
func TestBenchHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test skipped in -short mode")
	}
	opts := core.Options{Nodes: 16, Iterations: 3, Reps: 1, Seed: 1, Workloads: []string{"minife"}}
	for id, driver := range core.Figures() {
		f, err := driver(opts)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(f.Rows) == 0 {
			t.Fatalf("figure %s produced no rows", id)
		}
		for _, r := range f.Rows {
			if !r.Saturated && r.MeanPct < -1 {
				t.Fatalf("figure %s: negative slowdown %+v", id, r)
			}
		}
	}
	var sample stats.Sample
	sample.Add(1)
	if sample.N() != 1 {
		t.Fatal("stats wiring broken")
	}
}
