// retirement closes the loop between DRAM fault populations, the OS
// page-retirement policy, and application-visible CE logging overhead:
// the same fault population is run through retirement policies of
// increasing aggressiveness, and the resulting *logged*-CE rate drives
// the large-scale overhead simulation.
//
//	go run ./examples/retirement
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/retire"
)

func main() {
	// An unhealthy node population: frequent faults, active error
	// generators (roughly the Facebook-median regime).
	base := retire.Config{
		Seed:            1,
		Hours:           24 * 30, // one month
		FaultsPerYear:   40,
		CEsPerFaultHour: 3,
	}

	exp, err := core.NewExperiment(core.ExperimentConfig{
		Workload:   "lulesh",
		Nodes:      64,
		Iterations: 40,
		TraceSeed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}

	t := report.New("page retirement vs firmware CE-logging overhead (lulesh, 64 nodes)",
		"policy", "mtbce-logged", "suppression", "pages-lost", "fw-slowdown")
	for _, policy := range []retire.Policy{
		{Threshold: 0},                // retirement off
		{Threshold: 10, MaxPages: 64}, // conservative
		{Threshold: 2, MaxPages: 64},  // aggressive
		{Threshold: 1, MaxPages: 512}, // aggressive with a big budget
	} {
		cfg := base
		cfg.Policy = policy
		res, err := retire.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		mtbce := res.LoggedMTBCENanos(cfg.Hours)
		rep, err := exp.RunRepeated(core.Scenario{
			MTBCE:    mtbce,
			PerEvent: noise.Fixed(133_000_000),
			Target:   noise.AllNodes,
			Seed:     3,
		}, 3)
		if err != nil {
			log.Fatal(err)
		}
		slow := report.Pct(rep.Sample.Mean())
		if rep.Saturated && rep.Sample.N() == 0 {
			slow = "no-progress"
		}
		label := "off"
		if policy.Threshold > 0 {
			label = fmt.Sprintf("thr=%d/budget=%d", policy.Threshold, policy.MaxPages)
		}
		t.AddRow(label,
			report.Nanos(mtbce),
			fmt.Sprintf("%.1f%%", res.SuppressionPct()),
			fmt.Sprintf("%d", res.PagesRetired),
			slow)
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: page retirement multiplies the effective MTBCE by silencing")
	fmt.Println("repeat offenders (cell/row faults), directly buying back the firmware")
	fmt.Println("logging overhead — but column/bank faults evade the page budget, so")
	fmt.Println("retirement alone cannot rescue a truly failing DIMM.")
}
