// singlenode reproduces the shape of the paper's Fig. 3 at laptop
// scale: how often can a *single* node emit correctable errors before
// the whole application suffers? Useful to a system administrator
// deciding when a DIMM that logs CEs actually needs replacing.
//
//	go run ./examples/singlenode
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/systems"
)

func main() {
	const workload = "hpcg"
	exp, err := core.NewExperiment(core.ExperimentConfig{
		Workload:   workload,
		Nodes:      64,
		Iterations: 25,
		TraceSeed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}

	mtbces := []int64{
		10_000_000,        // 10 ms
		100_000_000,       // 100 ms
		1_000_000_000,     // 1 s
		10_000_000_000,    // 10 s
		100_000_000_000,   // 100 s
		1_000_000_000_000, // 1000 s
	}

	t := report.New(fmt.Sprintf("single-node CEs on %s (%d nodes): slowdown vs MTBCE", workload, exp.Ranks()),
		"mtbce", "hardware-only", "software-cmci", "firmware-emca")
	for _, mtbce := range mtbces {
		cells := []string{report.Nanos(mtbce)}
		for _, mode := range systems.LoggingModes() {
			rep, err := exp.RunRepeated(core.Scenario{
				MTBCE:    mtbce,
				PerEvent: noise.Fixed(mode.PerEventNanos),
				Target:   0, // only node 0 is failing
				Seed:     3,
			}, 3)
			if err != nil {
				log.Fatal(err)
			}
			if rep.Saturated && rep.Sample.N() == 0 {
				cells = append(cells, "no-progress")
			} else {
				cells = append(cells, report.Pct(rep.Sample.Mean()))
			}
		}
		t.AddRow(cells...)
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: software logging tolerates a CE every ~10ms on one node;")
	fmt.Println("firmware logging needs the node's MTBCE above ~1s (paper §IV-B).")
}
