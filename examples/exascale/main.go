// exascale reproduces the shape of the paper's Fig. 5 at a reduced,
// scale-compensated node count: how much can DRAM correctable-error
// rates grow on an exascale system before firmware-first logging
// becomes unaffordable?
//
//	go run ./examples/exascale
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	opts := core.Options{
		Nodes:     128, // stands in for 16,384 nodes, CE rate compensated
		Reps:      3,
		Seed:      1,
		Workloads: []string{"lammps-lj", "lammps-crack", "lulesh", "minife"},
	}
	f, err := core.Figure5(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Render the firmware rows as a bar chart per workload, the
	// paper's headline comparison.
	t := report.New("firmware-first CE logging on hypothetical exascale systems",
		"workload", "system", "slowdown", "")
	maxPct := 0.0
	for _, r := range f.Rows {
		if r.Mode == "firmware-emca" && r.MeanPct > maxPct {
			maxPct = r.MeanPct
		}
	}
	for _, r := range f.Rows {
		if r.Mode != "firmware-emca" {
			continue
		}
		t.AddRow(r.Workload, r.System, report.Pct(r.MeanPct), report.Bar(r.MeanPct, maxPct, 40))
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: at 10-20x Cielo's CE rate firmware logging already costs")
	fmt.Println("tens of percent for tightly-coupled codes (lulesh, lammps-crack);")
	fmt.Println("at 100x it is catastrophic, while lammps-lj barely notices (paper §IV-C).")
}
