// anatomy dissects *where* correctable-error logging time goes at
// scale: the raw detour time the errors steal versus the waiting time
// those detours induce on other ranks through communication
// dependencies (the propagation mechanism of the paper's Fig. 1).
//
//	go run ./examples/anatomy
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/report"
)

func main() {
	t := report.New("anatomy of firmware CE logging overhead (64 nodes, MTBCE 5s/node)",
		"workload", "slowdown", "detour-time", "induced-wait", "amplification")
	for _, wl := range []string{"lammps-lj", "minife", "lulesh", "lammps-crack"} {
		exp, err := core.NewExperiment(core.ExperimentConfig{
			Workload:   wl,
			Nodes:      64,
			Iterations: 40,
			TraceSeed:  1,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := exp.Run(core.Scenario{
			MTBCE:    5_000_000_000,
			PerEvent: noise.Fixed(133_000_000),
			Target:   noise.AllNodes,
			Seed:     9,
		})
		if err != nil {
			log.Fatal(err)
		}
		p := res.Profile
		// Baseline wait (load imbalance, network) exists without CEs;
		// measure the CE-induced part against a clean profile.
		clean, err := exp.Run(core.Scenario{
			MTBCE:    1 << 62, // effectively no errors
			PerEvent: noise.Fixed(1),
			Target:   noise.AllNodes,
			Seed:     9,
		})
		if err != nil {
			log.Fatal(err)
		}
		induced := p.Wait - clean.Profile.Wait
		if induced < 0 {
			induced = 0
		}
		amp := "-"
		if p.Detour > 0 {
			amp = fmt.Sprintf("%.1fx", float64(induced)/float64(p.Detour))
		}
		t.AddRow(wl,
			report.Pct(res.SlowdownPct),
			report.Nanos(p.Detour),
			report.Nanos(induced),
			amp)
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: the detour time scales only with each run's length (same CE")
	fmt.Println("process everywhere); what differs is the *induced waiting* — tightly")
	fmt.Println("coupled codes amplify every second of local detour into tens of")
	fmt.Println("seconds of machine-wide stalls, which is why collective frequency")
	fmt.Println("governs CE sensitivity (paper §IV-C).")
}
