// Quickstart: simulate one workload under correctable-error logging and
// print the slowdown against the noise-free baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/report"
)

func main() {
	// Prepare miniFE on 64 nodes: generate its trace, expand the
	// collectives, and simulate the noise-free baseline.
	exp, err := core.NewExperiment(core.ExperimentConfig{
		Workload:   "minife",
		Nodes:      64,
		Iterations: 20,
		TraceSeed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("miniFE on %d nodes, baseline makespan %s\n",
		exp.Ranks(), report.Nanos(exp.Baseline().Makespan))

	// Inject correctable errors on every node: one CE per node every
	// 2 seconds on average, each stealing the CPU for 133 ms (the
	// firmware-first logging cost the paper measures).
	rep, err := exp.RunRepeated(core.Scenario{
		MTBCE:    2_000_000_000,            // 2 s in ns
		PerEvent: noise.Fixed(133_000_000), // 133 ms
		Target:   noise.AllNodes,
		Seed:     7,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	s := rep.Sample.Summarize()
	fmt.Printf("firmware CE logging at MTBCE=2s: slowdown %.1f%% +/- %.1f%% (n=%d)\n",
		s.Mean, s.CI95, s.N)

	// The same error rate with software (OS/CMCI) logging is harmless.
	rep2, err := exp.RunRepeated(core.Scenario{
		MTBCE:    2_000_000_000,
		PerEvent: noise.Fixed(775_000), // 775 us
		Target:   noise.AllNodes,
		Seed:     7,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software CE logging at MTBCE=2s: slowdown %.3f%%\n", rep2.Sample.Mean())
}
