// cevsdue quantifies the paper's motivating comparison (§I): detected
// uncorrectable errors (DUEs) force checkpoint/restart recovery, while
// correctable errors (CEs) — roughly 20x more frequent — only cost
// logging time. At what CE rate does *logging* overhead rival the
// *restart* overhead everyone already budgets for?
//
//	go run ./examples/cevsdue
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/due"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/systems"
	"repro/internal/tracegen"
)

func main() {
	const nodes = 16384
	spec, err := tracegen.Lookup("lulesh")
	if err != nil {
		log.Fatal(err)
	}
	sync := predict.SyncInterval(spec)

	// The paper cites CE rates ~20x DUE rates on recent systems. The
	// exascale scenarios raise only the *correctable* rate (weaker ECC
	// still corrects single-symbol errors); hold the DUE rate at the
	// Cielo-derived per-node value: 26.35/20 ~ 1.3 DUE/node/year, a
	// ~25-minute system MTBF at 16,384 nodes. Checkpoint optimally
	// (Daly) with a 60 s checkpoint and 120 s restart.
	cielo, err := systems.ByName("cielo")
	if err != nil {
		log.Fatal(err)
	}
	dueCfg := due.Config{
		NodeMTBF:   int64(systems.SecondsPerYear / (cielo.CEPerNodeYear / 20) * 1e9),
		Nodes:      nodes,
		Checkpoint: 60 * 1e9,
		Restart:    120 * 1e9,
	}
	duePct, err := dueCfg.ExpectedOverheadPct()
	if err != nil {
		log.Fatal(err)
	}

	t := report.New(
		fmt.Sprintf("CE logging vs DUE restart overhead, %d-node exascale system (lulesh cadence)", nodes),
		"system", "mtbce", "due-overhead", "ce-software", "ce-firmware")
	for _, sys := range systems.ExascaleRows() {
		cePct := func(perEvent int64) string {
			est, err := predict.Slowdown(predict.Inputs{
				Nodes:             nodes,
				MTBCENanos:        sys.MTBCENanos(),
				PerEventNanos:     perEvent,
				SyncIntervalNanos: sync,
			})
			if err != nil {
				log.Fatal(err)
			}
			if est.Regime == predict.RegimeNoProgress {
				return "no-progress"
			}
			return report.Pct(est.Pct)
		}
		t.AddRow(sys.Name,
			fmt.Sprintf("%.0fs", sys.MTBCESeconds),
			report.Pct(duePct),
			cePct(systems.SoftwareCMCI.PerEventNanos),
			cePct(systems.FirmwareEMCA.PerEventNanos))
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: with software logging, CE handling stays far below the")
	fmt.Println("checkpoint/restart overhead at every projected rate. With firmware-first")
	fmt.Println("logging, CE *logging* overtakes DUE *recovery* as the dominant resilience")
	fmt.Println("cost once rates climb past ~10-20x Cielo — the paper's core warning.")
}
