// mcasignature reproduces the paper's Fig. 2 on the node model: the OS
// noise signatures of a Skylake node under correctable-error injection
// with each logging configuration, as seen by a selfish-style detour
// detector.
//
//	go run ./examples/mcasignature
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	sigs, table, err := core.Figure2(1)
	if err != nil {
		log.Fatal(err)
	}
	if err := table.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Show the firmware signature's big detours on core 0: the ~7 ms
	// SMI every injection and the ~500 ms firmware decode every 10th
	// (Fig. 2d's two groups of tall bars).
	fmt.Println("\nfirmware-mode detours > 1ms on core 0 (Fig. 2d's tall bars):")
	t := report.New("", "time", "duration", "source")
	for _, d := range sigs["firmware"].CoreDetours(0) {
		if d.Dur < 1_000_000 {
			continue
		}
		t.AddRow(report.Nanos(d.Start), report.Nanos(d.Dur), d.Source)
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: every CE halts all cores ~7ms in SMM; every 10th CE the")
	fmt.Println("firmware decode adds ~500ms. The dry-run shows injection setup is free.")
}
