// burstynode explores the paper's conclusion (iii): bursty
// correctable-error behaviour on a single node. A failing DIMM rarely
// produces a smooth Poisson CE stream — a faulty row emits trains of
// closely spaced errors separated by quiet stretches. This example
// compares a Poisson process against a bursty process with the *same
// average rate*, for software and firmware logging.
//
//	go run ./examples/burstynode
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/report"
)

func main() {
	exp, err := core.NewExperiment(core.ExperimentConfig{
		Workload:   "cth",
		Nodes:      64,
		Iterations: 20,
		TraceSeed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Both processes average one CE per second on node 0. The bursty
	// process delivers them as trains of ~20 CEs spaced 5 ms apart,
	// roughly every 20 seconds — the signature of a stuck row.
	const meanGap = 1_000_000_000 // 1 s
	bursty := noise.Bursty{
		QuietGap: 19_905_000_000, // chosen so MeanGap() == 1 s
		BurstGap: 5_000_000,      // 5 ms within a burst
		BurstLen: 20,
	}
	if d := bursty.MeanGap() - meanGap; d > 1e6 || d < -1e6 {
		log.Fatalf("burst parameters drifted: mean gap %.3fms", bursty.MeanGap()/1e6)
	}

	t := report.New("single failing node on cth (64 nodes): Poisson vs bursty CEs at 1 CE/s",
		"logging", "poisson", "bursty")
	modes := []struct {
		name string
		cost int64
	}{
		{"software-cmci", 775_000},
		{"firmware-emca", 133_000_000},
	}
	for _, m := range modes {
		pois, err := exp.RunRepeated(core.Scenario{
			MTBCE: meanGap, PerEvent: noise.Fixed(m.cost), Target: 0, Seed: 5,
		}, 6)
		if err != nil {
			log.Fatal(err)
		}
		brst, err := exp.RunRepeated(core.Scenario{
			Arrivals: bursty, PerEvent: noise.Fixed(m.cost), Target: 0, Seed: 5,
		}, 6)
		if err != nil {
			log.Fatal(err)
		}
		cell := func(r *core.Repeated) string {
			if r.Saturated && r.Sample.N() == 0 {
				return "no-progress"
			}
			return report.Pct(r.Sample.Mean())
		}
		t.AddRow(m.name, cell(pois), cell(brst))
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: at equal average rates, bursts concentrate detours into a few")
	fmt.Println("synchronization intervals. For long (firmware) events the rest of the")
	fmt.Println("machine stalls behind the bursting node either way; for short (software)")
	fmt.Println("events bursts change how much of the cost hides in network slack.")
}
