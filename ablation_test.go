package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/collectives"
	"repro/internal/extrapolate"
	"repro/internal/loggopsim"
	"repro/internal/netmodel"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// BenchmarkAblationExtrapolation validates the trace-extrapolation
// substitute the paper relies on (§III-C): a small traced run
// extrapolated to k*p ranks versus the workload generated directly at
// k*p ranks. Collectives are exact under extrapolation; point-to-point
// topology is approximated, so baselines differ slightly — the bench
// records by how much, and whether CE slowdowns agree.
func BenchmarkAblationExtrapolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := report.New("ablation: extrapolated vs directly generated traces (minife, firmware @ MTBCE 2s)",
			"variant", "ranks", "baseline", "slowdown")
		base, err := tracegen.Generate("minife", 8, 15, 1)
		if err != nil {
			b.Fatal(err)
		}
		extr, err := extrapolate.Extrapolate(base, 8)
		if err != nil {
			b.Fatal(err)
		}
		direct, err := tracegen.Generate("minife", 64, 15, 1)
		if err != nil {
			b.Fatal(err)
		}
		var baselines []int64
		var slowdowns []float64
		for _, v := range []struct {
			name string
			tr   *trace.Trace
		}{{"extrapolated", extr}, {"direct", direct}} {
			opsTrace := v.tr
			ex, err := collectives.Expand(opsTrace, collectives.Config{})
			if err != nil {
				b.Fatal(err)
			}
			baseRes, err := loggopsim.Simulate(ex, loggopsim.Config{Net: netmodel.CrayXC40()})
			if err != nil {
				b.Fatal(err)
			}
			var sample stats.Sample
			for seed := uint64(1); seed <= 3; seed++ {
				nm, err := noise.NewCE(opsTrace.NumRanks(), noise.Config{
					Seed: seed, MTBCE: 2 * nsS, Duration: noise.Fixed(133 * nsMs), Target: noise.AllNodes,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := loggopsim.Simulate(ex, loggopsim.Config{Net: netmodel.CrayXC40(), Noise: nm})
				if err != nil {
					b.Fatal(err)
				}
				sample.Add(stats.Slowdown(res.Makespan, baseRes.Makespan))
			}
			baselines = append(baselines, baseRes.Makespan)
			slowdowns = append(slowdowns, sample.Mean())
			t.AddRow(v.name, fmt.Sprintf("%d", opsTrace.NumRanks()),
				report.Nanos(baseRes.Makespan), report.Pct(sample.Mean()))
		}
		writeResult(b, "ablation-extrapolation", t)
		b.ReportMetric(100*float64(baselines[0]-baselines[1])/float64(baselines[1]), "baseline-delta-pct")
		b.ReportMetric(slowdowns[0]-slowdowns[1], "slowdown-delta-pp")
	}
}

// BenchmarkAblationCorrelatedSMM quantifies the effect the streaming
// per-node model cannot express: with several ranks per node,
// firmware-first logging (SMI in SMM) halts every co-located rank at
// once. Correlated detours (noise.SharedCE) are compared against
// independent per-rank detours at the same per-rank rate.
func BenchmarkAblationCorrelatedSMM(b *testing.B) {
	const (
		ranks        = 64
		ranksPerNode = 4
	)
	tr, err := tracegen.Generate("minife", ranks, 15, 1)
	if err != nil {
		b.Fatal(err)
	}
	ex, err := collectives.Expand(tr, collectives.Config{})
	if err != nil {
		b.Fatal(err)
	}
	baseRes, err := loggopsim.Simulate(ex, loggopsim.Config{Net: netmodel.CrayXC40(), RanksPerNode: ranksPerNode})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := report.New("ablation: correlated (SMM) vs independent CE detours (minife, 16 nodes x 4 ranks)",
			"model", "slowdown")
		var corr, indep stats.Sample
		for seed := uint64(1); seed <= 4; seed++ {
			shared, err := noise.NewSharedCE(ranks/ranksPerNode, ranksPerNode, noise.Config{
				Seed: seed, MTBCE: 2 * nsS, Duration: noise.Fixed(50 * nsMs), Target: noise.AllNodes,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := loggopsim.Simulate(ex, loggopsim.Config{
				Net: netmodel.CrayXC40(), RanksPerNode: ranksPerNode, Noise: shared,
			})
			if err != nil {
				b.Fatal(err)
			}
			corr.Add(stats.Slowdown(res.Makespan, baseRes.Makespan))

			ind, err := noise.NewCE(ranks, noise.Config{
				Seed: seed, MTBCE: 2 * nsS, Duration: noise.Fixed(50 * nsMs), Target: noise.AllNodes,
			})
			if err != nil {
				b.Fatal(err)
			}
			res2, err := loggopsim.Simulate(ex, loggopsim.Config{
				Net: netmodel.CrayXC40(), RanksPerNode: ranksPerNode, Noise: ind,
			})
			if err != nil {
				b.Fatal(err)
			}
			indep.Add(stats.Slowdown(res2.Makespan, baseRes.Makespan))
		}
		t.AddRow("correlated-smm", report.Pct(corr.Mean()))
		t.AddRow("independent", report.Pct(indep.Mean()))
		writeResult(b, "ablation-correlated-smm", t)
		b.ReportMetric(corr.Mean(), "correlated-pct")
		b.ReportMetric(indep.Mean(), "independent-pct")
	}
}
